//! The paper's analytical results (Sec. V), evaluable in code.
//!
//! * [`im_tracking_accuracy`] — the exact IM accuracy of eq. (11);
//! * [`ml_tracking_accuracy`] — the exact ML accuracy of eq. (12);
//! * [`LikelihoodConstants`] — `c_0`, `c_min`, `c_max` of Theorem V.4;
//! * [`CmlProductChain`] — the induced chain `y_t = (x_{1,t}, x_{2,t})` of
//!   eq. (17), from which `E[c_t]`, `δ` and the ε-mixing time follow;
//! * [`TheoremV4Bound`] — the exponential-decay bound (21) on the CML/OO
//!   tracking accuracy;
//! * [`TheoremV5Bound`] — the per-slot bound (24) on MO and the
//!   time-average bound (26) of Corollary V.6.
//!
//! The integration tests check each closed form against Monte Carlo
//! simulation, and each bound against the simulated accuracy whenever its
//! hypothesis (`E[c_t] < 0`, i.e. the chaff's moves are more predictable
//! than the user's) holds.

use crate::strategy::pick_constrained_argmax;
use crate::trellis;
use crate::{CoreError, Result};
use chaff_markov::{mixing, CellId, MarkovChain, StateDistribution, TransitionMatrix};

/// Largest state-space size for which the dense `L² × L²` product chain is
/// built; beyond this the memory cost is prohibitive and callers should
/// fall back to empirical estimation.
pub const MAX_PRODUCT_STATES: usize = 64;

/// Exact tracking accuracy of the IM strategy (eq. 11):
/// `P_IM = Σ_x π(x)² + (1 − Σ_x π(x)²) / N`, where `N` is the total number
/// of trajectories (user + chaffs).
///
/// As `N → ∞` this converges to the collision probability `Σ π²`, which is
/// at least `1/L` (Lemma V.1) — IM never reaches zero accuracy.
///
/// # Panics
///
/// Panics if `num_trajectories == 0`.
pub fn im_tracking_accuracy(pi: &StateDistribution, num_trajectories: usize) -> f64 {
    assert!(num_trajectories > 0, "need at least the user's trajectory");
    let collision = pi.collision_probability();
    collision + (1.0 - collision) / num_trajectories as f64
}

/// Exact tracking accuracy of the ML strategy (eq. 12):
/// `P_ML = 1/T Σ_t π(x_{2,t})` where `x_2` is the most likely trajectory.
///
/// # Errors
///
/// Returns an error if `horizon == 0`.
pub fn ml_tracking_accuracy(chain: &MarkovChain, horizon: usize) -> Result<f64> {
    let path = trellis::most_likely_trajectory(chain, horizon, None)?;
    let sum: f64 = path
        .trajectory
        .iter()
        .map(|cell| chain.initial().prob(cell))
        .sum();
    Ok(sum / horizon as f64)
}

/// The extremal log-likelihood-difference constants of Theorem V.4.
///
/// With `π_max, π_2` the two largest steady-state masses, `p_max / p_min`
/// the largest / smallest positive transition probabilities and `p_2` the
/// smallest over rows of the second-largest row entry:
///
/// * `c0  = log(π_max / π_2)` — the largest possible `c_1`;
/// * `cmin = log(p_min / p_max)` — the smallest possible `c_t`;
/// * `cmax = log(p_max / p_2)` — the largest possible `c_t`
///   (`+inf` when some row has a single successor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LikelihoodConstants {
    /// Maximum of the initial-slot difference `c_1`.
    pub c0: f64,
    /// Minimum per-slot difference for `t > 1`.
    pub cmin: f64,
    /// Maximum per-slot difference for `t > 1`.
    pub cmax: f64,
}

impl LikelihoodConstants {
    /// Computes the constants from a mobility model.
    pub fn from_chain(chain: &MarkovChain) -> Self {
        let pi = chain.initial();
        let pi_max = pi.max();
        let pi_2 = pi.second_max();
        let p_max = chain.matrix().max_prob();
        let p_min = chain.matrix().min_positive_prob().unwrap_or(p_max);
        let p_2 = chain.matrix().p2();
        let ratio_log = |num: f64, den: f64| {
            if den > 0.0 {
                (num / den).ln()
            } else {
                f64::INFINITY
            }
        };
        LikelihoodConstants {
            c0: ratio_log(pi_max, pi_2),
            cmin: ratio_log(p_min, p_max),
            cmax: ratio_log(p_max, p_2),
        }
    }

    /// The denominator span `c_max − c_min` of bounds (21) and (24).
    pub fn span(&self) -> f64 {
        self.cmax - self.cmin
    }
}

/// The induced product chain `y_t = (x_{1,t}, x_{2,t})` under the CML
/// strategy (eq. 17): the user moves by `P`, and the chaff deterministically
/// takes its most likely non-co-locating move.
#[derive(Debug, Clone)]
pub struct CmlProductChain {
    product: MarkovChain,
    /// `g[y] = E[c_t | y_{t-1} = y]` (eq. 18).
    g: Vec<f64>,
    base_states: usize,
}

impl CmlProductChain {
    /// Builds the product chain for a base mobility model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Markov`] wrapping a dimension error when
    /// `L > MAX_PRODUCT_STATES` (the dense product would not fit), or a
    /// convergence error when the product chain's stationary distribution
    /// cannot be found by power iteration.
    pub fn build(chain: &MarkovChain) -> Result<Self> {
        let l = chain.num_states();
        if l > MAX_PRODUCT_STATES {
            return Err(CoreError::Markov(
                chaff_markov::MarkovError::DimensionMismatch {
                    expected: MAX_PRODUCT_STATES,
                    found: l,
                },
            ));
        }
        let n = l * l;
        let mut rows = vec![vec![0.0f64; n]; n];
        let mut g = vec![0.0f64; n];
        for x1 in 0..l {
            for x2 in 0..l {
                let y = x1 * l + x2;
                let mut g_acc = 0.0;
                for (x1_next, p) in chain.matrix().successors(CellId::new(x1)) {
                    let x2_next = pick_constrained_argmax(chain, CellId::new(x2), x1_next, &[]);
                    let y_next = x1_next.index() * l + x2_next.index();
                    rows[y][y_next] += p;
                    // c_t for this transition: log P(user) - log P(chaff).
                    let chaff_lp = chain.matrix().log_prob(CellId::new(x2), x2_next);
                    let ct = if chaff_lp == f64::NEG_INFINITY {
                        // The chaff was cornered (co-location fallback with
                        // zero-probability move); treat as the worst case.
                        f64::INFINITY
                    } else {
                        p.ln() - chaff_lp
                    };
                    g_acc += p * ct;
                }
                g[y] = g_acc;
            }
        }
        let matrix = TransitionMatrix::from_rows(rows)?;
        let stationary = chaff_markov::stationary::stationary(&matrix)?;
        let product = MarkovChain::with_initial(matrix, stationary)?;
        Ok(CmlProductChain {
            product,
            g,
            base_states: l,
        })
    }

    /// The stationary expectation `E[c_t] = Σ_y π(y) g(y)`.
    ///
    /// Negative means the chaff's moves are *more* predictable than the
    /// user's — the hypothesis of Theorems V.4/V.5 and the
    /// information-theoretic condition `H(user) > H(chaff)`.
    pub fn expected_ct(&self) -> f64 {
        self.g
            .iter()
            .enumerate()
            .map(|(y, &gy)| self.product.initial().prob(CellId::new(y)) * gy)
            .sum()
    }

    /// The paper's `δ = min(Σ_y |g(y)|, 2 max_y |g(y)|)` (Lemma V.2).
    pub fn delta(&self) -> f64 {
        let sum: f64 = self.g.iter().map(|v| v.abs()).sum();
        let max = self.g.iter().map(|v| v.abs()).fold(0.0, f64::max);
        sum.min(2.0 * max)
    }

    /// The ε-mixing time of the product chain, or `None` if it does not
    /// mix within `max_t` steps.
    pub fn mixing_time(&self, epsilon: f64, max_t: usize) -> Option<usize> {
        mixing::mixing_time(
            self.product.matrix(),
            self.product.initial(),
            epsilon,
            max_t,
        )
    }

    /// Number of states in the base chain.
    pub fn base_states(&self) -> usize {
        self.base_states
    }

    /// The product chain itself (states indexed `x1 · L + x2`).
    pub fn chain(&self) -> &MarkovChain {
        &self.product
    }
}

/// The exponential tracking-accuracy bound of Theorem V.4 for the CML (and
/// hence OO) strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoremV4Bound {
    /// `µ = −E[c_t]` under the CML product chain.
    pub mu: f64,
    /// The deviation scale `δ` of Lemma V.2.
    pub delta: f64,
    /// Sub-chain stride `w = t_mix(ε) + 1`.
    pub w: usize,
    /// The chosen mixing tolerance ε.
    pub epsilon: f64,
    /// Extremal constants of the log-likelihood differences.
    pub constants: LikelihoodConstants,
}

impl TheoremV4Bound {
    /// Computes every ingredient of the bound for a mobility model.
    ///
    /// # Errors
    ///
    /// Propagates product-chain construction errors; returns
    /// [`CoreError::Markov`] with a no-convergence error when the product
    /// chain fails to mix within `max_mixing_steps`.
    pub fn compute(chain: &MarkovChain, epsilon: f64, max_mixing_steps: usize) -> Result<Self> {
        let product = CmlProductChain::build(chain)?;
        let w = product
            .mixing_time(epsilon, max_mixing_steps)
            .ok_or(CoreError::Markov(
                chaff_markov::MarkovError::NoConvergence {
                    iterations: max_mixing_steps,
                },
            ))?
            + 1;
        Ok(TheoremV4Bound {
            mu: -product.expected_ct(),
            delta: product.delta(),
            w,
            epsilon,
            constants: LikelihoodConstants::from_chain(chain),
        })
    }

    /// The effective drift `µ − εδ − c_0/(T − w)` for horizon `t`.
    fn drift(&self, horizon: usize) -> Option<f64> {
        if horizon <= self.w {
            return None;
        }
        let d = self.mu - self.epsilon * self.delta - self.constants.c0 / (horizon - self.w) as f64;
        d.is_finite().then_some(d)
    }

    /// Evaluates bound (21) for a horizon of `t` slots.
    ///
    /// Returns `None` when the theorem's hypothesis fails (drift negative,
    /// horizon too short, or degenerate constants); otherwise the bound,
    /// clamped to `[0, 1]`.
    pub fn evaluate(&self, horizon: usize) -> Option<f64> {
        let drift = self.drift(horizon)?;
        if drift < 0.0 {
            return None;
        }
        let span = self.constants.span() + 2.0 * self.epsilon * self.delta;
        if !span.is_finite() || span <= 0.0 {
            return None;
        }
        let chunks = horizon as f64 / self.w as f64 - 1.0;
        let exponent = -2.0 * chunks * (drift / span) * (drift / span);
        Some((self.w as f64 * exponent.exp()).min(1.0))
    }

    /// Whether the hypothesis `E[c_t] < 0` holds at all (necessary for the
    /// bound to ever bind as `T → ∞`).
    pub fn hypothesis_holds(&self) -> bool {
        self.mu - self.epsilon * self.delta > 0.0
    }
}

/// The per-slot (Theorem V.5) and time-average (Corollary V.6) bounds for
/// the MO strategy.
///
/// The MO analysis runs over the augmented chain
/// `z_t = (γ_t, x_{1,t}, x_{2,t})` whose first coordinate is continuous, so
/// unlike [`TheoremV4Bound`] the drift `µ' = −E[c_t]` is *estimated by
/// simulation* and the deviation scale uses the conservative exact bound
/// `δ' ≤ 2 max(|c_min|, |c_max|)` (every `|g'(z)|` is a conditional mean of
/// `c_t ∈ [c_min, c_max]`). The stride `w'` defaults to the CML product
/// chain's mixing time as a structural proxy; callers may override it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoremV5Bound {
    /// Estimated `µ' = −E[c_t]` under MO.
    pub mu_prime: f64,
    /// Conservative deviation scale `δ'`.
    pub delta_prime: f64,
    /// Sub-chain stride `w'`.
    pub w_prime: usize,
    /// The chosen mixing tolerance ε.
    pub epsilon: f64,
    /// Extremal constants of the log-likelihood differences.
    pub constants: LikelihoodConstants,
}

impl TheoremV5Bound {
    /// Estimates the bound's ingredients by simulating `runs` user
    /// trajectories of `horizon` slots with an MO chaff.
    ///
    /// # Errors
    ///
    /// Propagates strategy/product-chain errors.
    pub fn estimate<R: rand::Rng>(
        chain: &MarkovChain,
        epsilon: f64,
        runs: usize,
        horizon: usize,
        rng: &mut R,
    ) -> Result<Self> {
        use crate::strategy::{ChaffStrategy, MoStrategy};

        let mut sum = 0.0f64;
        let mut count = 0usize;
        for _ in 0..runs {
            let user = chain.sample_trajectory(horizon, rng);
            let chaff = &MoStrategy.generate(chain, &user, 1, rng)?[0];
            let cts = crate::likelihood::ct_series(chain, &user, chaff)?;
            for &ct in &cts[1..] {
                if ct.is_finite() {
                    sum += ct;
                    count += 1;
                }
            }
        }
        let mu_prime = if count > 0 {
            -(sum / count as f64)
        } else {
            0.0
        };
        let constants = LikelihoodConstants::from_chain(chain);
        let delta_prime = 2.0 * constants.cmin.abs().max(constants.cmax.abs());
        let w_prime = CmlProductChain::build(chain)?
            .mixing_time(epsilon, 10_000)
            .unwrap_or(horizon)
            + 1;
        Ok(TheoremV5Bound {
            mu_prime,
            delta_prime,
            w_prime,
            epsilon,
            constants,
        })
    }

    fn drift(&self, horizon: usize) -> Option<f64> {
        if horizon < self.w_prime + 2 {
            return None;
        }
        let tail = (horizon - self.w_prime - 1) as f64;
        let d = self.mu_prime
            - self.epsilon * self.delta_prime
            - (self.constants.c0 + self.constants.cmax) / tail;
        d.is_finite().then_some(d)
    }

    /// Evaluates the per-slot bound (24) at slot `t`.
    ///
    /// Returns `None` when the hypothesis fails at this horizon.
    pub fn per_slot(&self, t: usize) -> Option<f64> {
        let drift = self.drift(t)?;
        if drift < 0.0 {
            return None;
        }
        let span = self.constants.span() + 2.0 * self.epsilon * self.delta_prime;
        if !span.is_finite() || span <= 0.0 {
            return None;
        }
        let chunks = (t - self.w_prime - 1) as f64 / self.w_prime as f64;
        let exponent = -2.0 * chunks * (drift / span) * (drift / span);
        Some((self.w_prime as f64 * exponent.exp()).min(1.0))
    }

    /// Evaluates the time-average bound (26) of Corollary V.6 over a
    /// horizon of `t` slots.
    ///
    /// Returns `None` when the hypothesis never starts holding within `t`.
    pub fn time_average(&self, t: usize) -> Option<f64> {
        // T0: the smallest horizon at which the per-slot condition holds
        // (found together with its drift, so no second lookup can
        // disagree).
        let (t0, drift0) =
            (1..=t).find_map(|s| self.drift(s).filter(|&d| d >= 0.0).map(|d| (s, d)))?;
        let span = self.constants.span() + 2.0 * self.epsilon * self.delta_prime;
        if !span.is_finite() || span <= 0.0 {
            return None;
        }
        let w = self.w_prime as f64;
        let alpha = 2.0 * (drift0 / span) * (drift0 / span) / w;
        let geometric = w * (alpha * (w + 1.0 - t0 as f64)).exp() / (1.0 - (-alpha).exp());
        Some((((t0 - 1) as f64 + geometric) / t as f64).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(kind: ModelKind, seed: u64) -> MarkovChain {
        let mut rng = StdRng::seed_from_u64(seed);
        MarkovChain::new(kind.build(10, &mut rng).unwrap()).unwrap()
    }

    #[test]
    fn im_accuracy_formula_basics() {
        let uniform = StateDistribution::uniform(10).unwrap();
        // Uniform: collision = 1/10; N=2 gives 0.1 + 0.9/2 = 0.55.
        assert!((im_tracking_accuracy(&uniform, 2) - 0.55).abs() < 1e-12);
        // N -> infinity converges to the collision probability.
        assert!((im_tracking_accuracy(&uniform, 1_000_000) - 0.1).abs() < 1e-5);
        // More chaffs monotonically help.
        let skewed = StateDistribution::from_vec(vec![0.7, 0.2, 0.1]).unwrap();
        assert!(im_tracking_accuracy(&skewed, 2) > im_tracking_accuracy(&skewed, 5));
    }

    #[test]
    fn im_accuracy_floor_is_collision_probability() {
        for kind in ModelKind::ALL {
            let chain = model(kind, 7);
            let floor = chain.initial().collision_probability();
            assert!(im_tracking_accuracy(chain.initial(), 10_000) >= floor - 1e-9);
            assert!(floor >= 1.0 / 10.0 - 1e-9, "Lemma V.1 lower bound");
        }
    }

    #[test]
    fn ml_accuracy_matches_direct_computation() {
        let chain = model(ModelKind::SpatiallySkewed, 8);
        let horizon = 50;
        let p = ml_tracking_accuracy(&chain, horizon).unwrap();
        let path = trellis::most_likely_trajectory(&chain, horizon, None).unwrap();
        let manual: f64 = path
            .trajectory
            .iter()
            .map(|c| chain.initial().prob(c))
            .sum::<f64>()
            / horizon as f64;
        assert!((p - manual).abs() < 1e-12);
        assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn constants_are_ordered() {
        for kind in ModelKind::ALL {
            let chain = model(kind, 9);
            let c = LikelihoodConstants::from_chain(&chain);
            assert!(c.cmin <= 0.0, "{kind}: cmin = {}", c.cmin);
            assert!(c.cmax >= 0.0, "{kind}: cmax = {}", c.cmax);
            assert!(c.c0 >= 0.0, "{kind}: c0 = {}", c.c0);
            assert!(c.span() >= 0.0);
        }
    }

    #[test]
    fn product_chain_rows_are_stochastic_and_marginal_is_user() {
        let chain = model(ModelKind::NonSkewed, 10);
        let product = CmlProductChain::build(&chain).unwrap();
        assert_eq!(product.chain().num_states(), 100);
        // The x1-marginal of the product stationary must equal the user's
        // stationary distribution (x1 evolves autonomously).
        let l = product.base_states();
        for x1 in 0..l {
            let marginal: f64 = (0..l)
                .map(|x2| product.chain().initial().prob(CellId::new(x1 * l + x2)))
                .sum();
            let expected = chain.initial().prob(CellId::new(x1));
            assert!(
                (marginal - expected).abs() < 1e-6,
                "x1={x1}: {marginal} vs {expected}"
            );
        }
    }

    #[test]
    fn expected_ct_is_negative_for_random_models() {
        // Model (a): the user is high-entropy, the CML chaff is nearly
        // deterministic, so E[ct] < 0 (the condition of Theorem V.4).
        let chain = model(ModelKind::NonSkewed, 11);
        let product = CmlProductChain::build(&chain).unwrap();
        assert!(product.expected_ct() < 0.0);
        assert!(product.delta() > 0.0);
    }

    #[test]
    fn expected_ct_matches_simulation() {
        let chain = model(ModelKind::NonSkewed, 12);
        let product = CmlProductChain::build(&chain).unwrap();
        let analytic = product.expected_ct();
        // Simulate CML and average ct over long runs.
        use crate::strategy::{ChaffStrategy, CmlStrategy};
        let mut rng = StdRng::seed_from_u64(13);
        let mut sum = 0.0;
        let mut count = 0usize;
        for _ in 0..20 {
            let user = chain.sample_trajectory(500, &mut rng);
            let chaff = &CmlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
            let cts = crate::likelihood::ct_series(&chain, &user, chaff).unwrap();
            for &ct in &cts[1..] {
                sum += ct;
                count += 1;
            }
        }
        let empirical = sum / count as f64;
        assert!(
            (empirical - analytic).abs() < 0.05,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn theorem_v4_bound_decays_with_horizon() {
        // The bound carries a multiplicative mixing-time prefactor `w`
        // (≈37 for model (a) at ε = 0.01), so it only drops below one at
        // long horizons — the paper's claim is the exponential *rate*, not
        // tightness at T = 100.
        let chain = model(ModelKind::NonSkewed, 14);
        let bound = TheoremV4Bound::compute(&chain, 0.01, 5_000).unwrap();
        assert!(bound.hypothesis_holds());
        let b_mid = bound.evaluate(20_000).expect("evaluable");
        let b_long = bound.evaluate(200_000).expect("evaluable");
        assert!(b_long < b_mid, "{b_long} !< {b_mid}");
        assert!(b_long < 0.01, "exponential decay must bite: {b_long}");
    }

    #[test]
    fn theorem_v4_bound_none_below_mixing_horizon() {
        let chain = model(ModelKind::NonSkewed, 15);
        let bound = TheoremV4Bound::compute(&chain, 0.01, 5_000).unwrap();
        assert_eq!(bound.evaluate(bound.w), None);
    }

    #[test]
    fn oversized_state_space_is_rejected() {
        let mut rng = StdRng::seed_from_u64(16);
        let chain = MarkovChain::new(
            ModelKind::NonSkewed
                .build(MAX_PRODUCT_STATES + 1, &mut rng)
                .unwrap(),
        )
        .unwrap();
        assert!(CmlProductChain::build(&chain).is_err());
    }

    #[test]
    fn theorem_v5_estimates_and_corollary_v6() {
        let chain = model(ModelKind::NonSkewed, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let bound = TheoremV5Bound::estimate(&chain, 0.01, 30, 200, &mut rng).unwrap();
        assert!(
            bound.mu_prime > 0.0,
            "MO should be more predictable than a random user"
        );
        // Per-slot bound decays.
        let early = bound.per_slot(bound.w_prime + 50);
        let late = bound.per_slot(bound.w_prime + 2_000);
        if let (Some(e), Some(l)) = (early, late) {
            assert!(l <= e);
        }
        // Time-average bound is in (0, 1] and decreases with T.
        let avg_short = bound.time_average(500);
        let avg_long = bound.time_average(5_000);
        if let (Some(s), Some(l)) = (avg_short, avg_long) {
            assert!(l <= s + 1e-12);
            assert!(s <= 1.0 && l > 0.0);
        }
    }
}

//! Tracking- and detection-accuracy metrics (Sec. II-D).
//!
//! The eavesdropper's *tracking accuracy* is the time-average probability
//! of locating the user correctly: if it believes trajectory `û` is the
//! user's, slot `t` counts as tracked when `x_{û,t} = x_{1,t}` — note this
//! can hold even when `û` names a chaff that happens to co-locate. The
//! *detection accuracy* is the stricter event `û = 1`.
//!
//! Ties are handled in expectation: a [`Detection`]
//! carries its whole argmax set, and each metric averages over it — equal
//! to the paper's "random guess among ties" without Monte Carlo noise.

use crate::detector::Detection;
use chaff_markov::{CellGrid, Trajectory};

/// Per-slot tracking accuracy: element `t` is the probability that the
/// detected trajectory co-locates with the user at slot `t`.
///
/// `detections[t]` must be the decision made at slot `t` (e.g. from
/// [`MlDetector::detect_prefixes`](crate::detector::MlDetector::detect_prefixes));
/// `user_index` is the position of the real user in `observed`.
///
/// # Panics
///
/// Panics if `detections` is longer than the trajectories or indices are
/// out of range.
pub fn tracking_accuracy_series(
    observed: &[Trajectory],
    user_index: usize,
    detections: &[Detection],
) -> Vec<f64> {
    let user = &observed[user_index];
    detections
        .iter()
        .enumerate()
        .map(|(t, d)| {
            let tie = d.tie_set();
            let hits = tie
                .iter()
                .filter(|&&u| observed[u].cell(t) == user.cell(t))
                .count();
            hits as f64 / tie.len() as f64
        })
        .collect()
}

/// Per-slot tracking accuracy when the *same* final decision is used for
/// every slot (an offline eavesdropper that detects once at the horizon
/// and then replays the trajectory).
pub fn tracking_accuracy_series_fixed(
    observed: &[Trajectory],
    user_index: usize,
    detection: &Detection,
) -> Vec<f64> {
    let user = &observed[user_index];
    let horizon = user.len();
    (0..horizon)
        .map(|t| {
            let tie = detection.tie_set();
            let hits = tie
                .iter()
                .filter(|&&u| observed[u].cell(t) == user.cell(t))
                .count();
            hits as f64 / tie.len() as f64
        })
        .collect()
}

/// Per-slot detection accuracy: the probability that the decision at slot
/// `t` names the user's trajectory exactly.
pub fn detection_accuracy_series(user_index: usize, detections: &[Detection]) -> Vec<f64> {
    detections.iter().map(|d| d.prob_of(user_index)).collect()
}

/// [`tracking_accuracy_series`] over a slot-major [`CellGrid`] — the
/// fleet-scale path: slot `t` reads one contiguous grid row instead of
/// gathering across `N` trajectory allocations.
///
/// # Panics
///
/// Panics if `detections` is longer than the grid's horizon or indices
/// are out of range.
pub fn tracking_accuracy_series_columnar(
    observed: &CellGrid,
    user_index: usize,
    detections: &[Detection],
) -> Vec<f64> {
    detections
        .iter()
        .enumerate()
        .map(|(t, d)| {
            let row = observed.row(t);
            let user_cell = row[user_index];
            let tie = d.tie_set();
            let hits = tie.iter().filter(|&&u| row[u] == user_cell).count();
            hits as f64 / tie.len() as f64
        })
        .collect()
}

/// Mean (over the designated users) time-average tracking accuracy of a
/// whole fleet, equal to averaging
/// [`tracking_accuracy_series_columnar`] + [`time_average`] over every
/// user — but computed per slot through a cell histogram of the tie
/// set, so the cost is `O(N + |ties|)` per slot instead of the per-user
/// `O(N · |ties|)`. At `N = 10⁶` with a small cell space the slot-0 tie
/// set holds `~N / L` members, which makes the per-user path quadratic
/// in `N`; this one stays linear.
///
/// `users[k]` is the observed index of designated user `k`'s real
/// service; `num_cells` bounds the cell space. Returns 0 when there are
/// no users or no detections.
///
/// # Panics
///
/// Panics if `detections` is longer than the grid's horizon, an index
/// is out of range, or a tie-set cell is `>= num_cells`.
pub fn mean_tracking_accuracy_columnar(
    observed: &CellGrid,
    users: &[usize],
    detections: &[Detection],
    num_cells: usize,
) -> f64 {
    if users.is_empty() || detections.is_empty() {
        return 0.0;
    }
    let mut histogram = vec![0usize; num_cells];
    let mut total = 0.0;
    for (t, d) in detections.iter().enumerate() {
        let row = observed.row(t);
        let tie = d.tie_set();
        for &i in tie {
            histogram[row[i].index()] += 1;
        }
        // A user is tracked by every tie member sharing its cell.
        let mut hits = 0usize;
        for &u in users {
            hits += histogram[row[u].index()];
        }
        total += hits as f64 / tie.len() as f64;
        for &i in tie {
            histogram[row[i].index()] = 0;
        }
    }
    total / (users.len() * detections.len()) as f64
}

/// Mean (over the designated users) time-average detection accuracy of
/// a whole fleet, equal to averaging [`detection_accuracy_series`] +
/// [`time_average`] over every user — computed per slot through a
/// membership table, `O(N + |ties|)` per slot instead of the per-user
/// `O(N · |ties|)`.
///
/// `num_services` bounds the observed index space. Returns 0 when there
/// are no users or no detections.
///
/// # Panics
///
/// Panics if an index in `users` or a tie set is `>= num_services`.
pub fn mean_detection_accuracy(
    num_services: usize,
    users: &[usize],
    detections: &[Detection],
) -> f64 {
    if users.is_empty() || detections.is_empty() {
        return 0.0;
    }
    let mut is_user = vec![false; num_services];
    for &u in users {
        is_user[u] = true;
    }
    let mut total = 0.0;
    for d in detections {
        let tie = d.tie_set();
        let named = tie.iter().filter(|&&i| is_user[i]).count();
        total += named as f64 / tie.len() as f64;
    }
    total / (users.len() * detections.len()) as f64
}

/// Arithmetic mean of a series — the paper's time-average accuracy
/// `1/T Σ_t`.
///
/// Returns 0 for an empty series.
pub fn time_average(series: &[f64]) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// Element-wise mean of several equal-length series — the Monte Carlo
/// average used to produce the accuracy-vs-time curves of Figs. 5, 7.
///
/// # Panics
///
/// Panics if the series have different lengths.
pub fn mean_series(series: &[Vec<f64>]) -> Vec<f64> {
    let Some(first) = series.first() else {
        return Vec::new();
    };
    let len = first.len();
    let mut out = vec![0.0; len];
    for s in series {
        assert_eq!(s.len(), len, "all series must have equal length");
        for (o, v) in out.iter_mut().zip(s) {
            *o += v;
        }
    }
    let n = series.len() as f64;
    for o in &mut out {
        *o /= n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> Vec<Trajectory> {
        vec![
            Trajectory::from_indices([0, 1, 2]), // user
            Trajectory::from_indices([0, 9, 2]), // chaff co-locating at t=0,2
            Trajectory::from_indices([5, 5, 5]), // disjoint chaff
        ]
    }

    #[test]
    fn unique_detection_of_user_tracks_everywhere() {
        let detections = vec![Detection::new(vec![0]); 3];
        let acc = tracking_accuracy_series(&obs(), 0, &detections);
        assert_eq!(acc, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn chaff_detection_tracks_only_on_co_location() {
        let detections = vec![Detection::new(vec![1]); 3];
        let acc = tracking_accuracy_series(&obs(), 0, &detections);
        assert_eq!(acc, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn ties_average_over_the_set() {
        let detections = vec![Detection::new(vec![1, 2]); 3];
        let acc = tracking_accuracy_series(&obs(), 0, &detections);
        assert_eq!(acc, vec![0.5, 0.0, 0.5]);
    }

    #[test]
    fn detection_accuracy_is_stricter_than_tracking() {
        // The chaff co-locates at t=0, so tracking succeeds but detection
        // fails.
        let detections = vec![Detection::new(vec![1]); 3];
        let tracking = tracking_accuracy_series(&obs(), 0, &detections);
        let detection = detection_accuracy_series(0, &detections);
        assert_eq!(detection, vec![0.0, 0.0, 0.0]);
        assert!(tracking[0] > detection[0]);
    }

    #[test]
    fn fixed_detection_replays_one_decision() {
        let acc = tracking_accuracy_series_fixed(&obs(), 0, &Detection::new(vec![1]));
        assert_eq!(acc, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn columnar_tracking_matches_the_trajectory_path() {
        let grid = CellGrid::from_trajectories(&obs()).unwrap();
        for tie in [vec![0], vec![1], vec![1, 2]] {
            let detections = vec![Detection::new(tie); 3];
            assert_eq!(
                tracking_accuracy_series_columnar(&grid, 0, &detections),
                tracking_accuracy_series(&obs(), 0, &detections)
            );
        }
    }

    #[test]
    fn aggregate_fleet_metrics_match_the_per_user_paths() {
        // Mixed tie sets including multi-way ties and chaff hits.
        let grid = CellGrid::from_trajectories(&obs()).unwrap();
        let detections = vec![
            Detection::new(vec![1, 2]),
            Detection::new(vec![0]),
            Detection::new(vec![1]),
        ];
        let users = vec![0usize, 2];
        let mut tracking = 0.0;
        let mut detection = 0.0;
        for &u in &users {
            tracking += time_average(&tracking_accuracy_series_columnar(&grid, u, &detections));
            detection += time_average(&detection_accuracy_series(u, &detections));
        }
        let fast_tracking = mean_tracking_accuracy_columnar(&grid, &users, &detections, 10);
        let fast_detection = mean_detection_accuracy(3, &users, &detections);
        assert!((fast_tracking - tracking / 2.0).abs() < 1e-12);
        assert!((fast_detection - detection / 2.0).abs() < 1e-12);
        // Empty inputs are zero, matching time_average's convention.
        assert_eq!(
            mean_tracking_accuracy_columnar(&grid, &[], &detections, 10),
            0.0
        );
        assert_eq!(mean_detection_accuracy(3, &users, &[]), 0.0);
    }

    #[test]
    fn time_average_basics() {
        assert_eq!(time_average(&[]), 0.0);
        assert!((time_average(&[1.0, 0.0, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_series_averages_elementwise() {
        let m = mean_series(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(m, vec![0.5, 0.5]);
        assert!(mean_series(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mean_series_rejects_ragged_input() {
        mean_series(&[vec![1.0], vec![1.0, 2.0]]);
    }
}

//! Per-slot log-likelihood differences between the user and a chaff.
//!
//! The paper's analysis revolves around the quantities (eqs. 14–15)
//!
//! ```text
//! c_1 = log π(x_{1,1}) − log π(x_{2,1})
//! c_t = log P(x_{1,t} | x_{1,t−1}) − log P(x_{2,t} | x_{2,t−1}),  t > 1
//! ```
//!
//! and their running sum `γ_t = Σ_{s≤t} c_s` — the gap between the user's
//! and the chaff's cumulative log-likelihoods. The ML detector prefers the
//! chaff exactly when `γ_t < 0`. Fig. 6 plots the empirical CDF of `c_t`
//! under the CML and MO strategies, and `E[c_t] < 0` is the condition for
//! exponential decay of the tracking accuracy (Theorems V.4 and V.5).

use crate::{CoreError, Result};
use chaff_markov::{MarkovChain, Trajectory};

/// The per-slot series `c_t` for a (user, chaff) trajectory pair.
///
/// Element 0 is `c_1` (the initial-distribution term); element `t` is the
/// transition term. Entries may be `±inf` when one of the trajectories
/// takes a zero-probability step.
///
/// # Errors
///
/// Returns an error when either trajectory is empty or their lengths differ.
pub fn ct_series(chain: &MarkovChain, user: &Trajectory, chaff: &Trajectory) -> Result<Vec<f64>> {
    if user.is_empty() || chaff.is_empty() {
        return Err(CoreError::EmptyTrajectory);
    }
    if user.len() != chaff.len() {
        return Err(CoreError::LengthMismatch {
            expected: user.len(),
            found: chaff.len(),
        });
    }
    let user_steps = chain.step_log_likelihoods(user);
    let chaff_steps = chain.step_log_likelihoods(chaff);
    Ok(user_steps
        .into_iter()
        .zip(chaff_steps)
        .map(|(u, c)| diff_with_infinities(u, c))
        .collect())
}

/// The running sums `γ_t = Σ_{s ≤ t} c_s` (Sec. IV-D).
///
/// `γ_t > 0` means the user's prefix is currently more likely than the
/// chaff's, i.e. the ML detector would pick the user.
///
/// # Errors
///
/// Same conditions as [`ct_series`].
pub fn gamma_series(
    chain: &MarkovChain,
    user: &Trajectory,
    chaff: &Trajectory,
) -> Result<Vec<f64>> {
    let mut acc = 0.0;
    Ok(ct_series(chain, user, chaff)?
        .into_iter()
        .map(|c| {
            acc = sum_with_infinities(acc, c);
            acc
        })
        .collect())
}

/// `a − b` with the convention that `(−inf) − (−inf) = 0` (both steps
/// impossible: neither trajectory gains likelihood over the other).
fn diff_with_infinities(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY && b == f64::NEG_INFINITY {
        0.0
    } else {
        a - b
    }
}

/// `a + b` with the convention that `inf + (−inf) = 0` cannot occur because
/// the operands come from [`diff_with_infinities`]; saturates otherwise.
fn sum_with_infinities(a: f64, b: f64) -> f64 {
    if a.is_infinite() && b.is_infinite() && a.signum() != b.signum() {
        0.0
    } else {
        a + b
    }
}

/// Empirical cumulative distribution function of a sample.
///
/// Returns the sorted sample paired with CDF values `i / n`; non-finite
/// samples are dropped (they correspond to impossible transitions and
/// carry no distributional information for Fig. 6).
pub fn empirical_cdf(mut samples: Vec<f64>) -> Vec<(f64, f64)> {
    samples.retain(|v| v.is_finite());
    samples.sort_by(f64::total_cmp);
    let n = samples.len() as f64;
    samples
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::TransitionMatrix;

    fn chain() -> MarkovChain {
        let m = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.3, 0.7]]).unwrap();
        MarkovChain::new(m).unwrap()
    }

    #[test]
    fn ct_matches_manual_computation() {
        let c = chain();
        let user = Trajectory::from_indices([0, 0]);
        let chaff = Trajectory::from_indices([1, 1]);
        let cts = ct_series(&c, &user, &chaff).unwrap();
        let pi = c.initial();
        let expected0 = pi.log_prob(user.cell(0)) - pi.log_prob(chaff.cell(0));
        assert!((cts[0] - expected0).abs() < 1e-12);
        let expected1 = (0.9f64).ln() - (0.7f64).ln();
        assert!((cts[1] - expected1).abs() < 1e-12);
    }

    #[test]
    fn gamma_is_cumulative_sum() {
        let c = chain();
        let user = Trajectory::from_indices([0, 1, 0]);
        let chaff = Trajectory::from_indices([1, 0, 1]);
        let cts = ct_series(&c, &user, &chaff).unwrap();
        let gammas = gamma_series(&c, &user, &chaff).unwrap();
        let mut acc = 0.0;
        for (ct, g) in cts.iter().zip(&gammas) {
            acc += ct;
            assert!((acc - g).abs() < 1e-12);
        }
    }

    #[test]
    fn identical_trajectories_have_zero_gap() {
        let c = chain();
        let x = Trajectory::from_indices([0, 1, 1, 0]);
        for g in gamma_series(&c, &x, &x).unwrap() {
            assert_eq!(g, 0.0);
        }
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let c = chain();
        let user = Trajectory::from_indices([0, 1]);
        let chaff = Trajectory::from_indices([0]);
        assert!(matches!(
            ct_series(&c, &user, &chaff),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn empty_trajectory_is_an_error() {
        let c = chain();
        assert!(matches!(
            ct_series(&c, &Trajectory::new(), &Trajectory::new()),
            Err(CoreError::EmptyTrajectory)
        ));
    }

    #[test]
    fn impossible_step_gives_infinite_ct() {
        let m = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.5, 0.5]]).unwrap();
        let c = MarkovChain::new(m).unwrap();
        // The user self-loops at 0, which is impossible; the chaff moves
        // legally.
        let user = Trajectory::from_indices([0, 0]);
        let chaff = Trajectory::from_indices([0, 1]);
        let cts = ct_series(&c, &user, &chaff).unwrap();
        assert_eq!(cts[1], f64::NEG_INFINITY);
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let cdf = empirical_cdf(vec![0.3, -1.0, 0.2, f64::INFINITY, -0.5]);
        assert_eq!(cdf.len(), 4); // infinity dropped
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn cdf_of_empty_sample_is_empty() {
        assert!(empirical_cdf(vec![]).is_empty());
        assert!(empirical_cdf(vec![f64::NAN]).is_empty());
    }
}

//! A reusable scoped worker pool for the fleet hot paths.
//!
//! Every sharded pass in the workspace used to spawn fresh OS threads per
//! call via `std::thread::scope` — fine for one batch detection over a
//! finished fleet, wasteful for per-slot streaming pushes and Monte Carlo
//! drivers that shard thousands of times. [`WorkerPool`] keeps a fixed set
//! of parked worker threads alive and dispatches borrowed shard closures
//! to them through a channel, preserving the scoped-borrow ergonomics of
//! `std::thread::scope`:
//!
//! ```
//! let pool = chaff_core::pool::WorkerPool::new(4);
//! let mut counts = vec![0usize; 4];
//! pool.scope(|scope| {
//!     for (i, count) in counts.iter_mut().enumerate() {
//!         scope.spawn(move || *count = i + 1);
//!     }
//! });
//! assert_eq!(counts, vec![1, 2, 3, 4]);
//! ```
//!
//! # Semantics
//!
//! * [`WorkerPool::scope`] returns only after every closure spawned in it
//!   has finished, so closures may borrow from the enclosing frame
//!   (including mutably, via disjoint slices) exactly like
//!   `std::thread::scope`.
//! * A panicking closure is re-raised on the scoping thread via
//!   [`std::panic::resume_unwind`] after all closures finish; when several
//!   panic, the **lowest spawn index** wins — the same "join in shard
//!   order" semantics the `thread::scope` call sites had.
//! * Tasks are executed by the pool's workers *and* by any thread waiting
//!   for a scope to drain (the waiter "helps"). That keeps every core busy
//!   and makes nested scopes deadlock-free: a scope waiting inside a
//!   worker always makes global progress by running queued tasks itself.
//! * The pool never imposes a partitioning: callers keep their existing
//!   contiguous shard ranges, so detections remain bit-for-bit identical
//!   to the `thread::scope` implementation (which never depended on which
//!   thread ran a shard).
//!
//! [`global`] exposes one process-wide pool sized from
//! `std::thread::available_parallelism`, shared by the batch and streaming
//! detectors, the fleet simulation, the trace-ingestion pipeline and the
//! Monte Carlo driver — detection/simulation calls pay no per-call thread
//! spawns.
//!
//! # Why the one `unsafe` block is sound
//!
//! Queued jobs are type-erased to `'static` closures so the long-lived
//! workers can hold them (the *only* unsafe code in this workspace —
//! see [`PoolScope::spawn`]). Lifetimes are enforced at runtime by the
//! scope discipline: `scope` does not return (even on panic — a drop
//! guard waits) until every job it spawned has run to completion, so no
//! job can outlive the `'env` borrows it captures. This is the standard
//! scoped-pool construction (`crossbeam::scope`, `scoped_threadpool`),
//! proven by the borrow checker on the API surface and by the wait
//! discipline internally.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased job: a spawned shard closure with its scope bookkeeping
/// attached (pending-count decrement, panic capture).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared job queue: a mutex-guarded deque (not an `mpsc` receiver,
/// so waiting scopes can `try_pop` to help without blocking behind a
/// worker parked inside a blocking `recv`).
struct Queue {
    state: Mutex<QueueState>,
    /// Signalled on every push and on shutdown.
    available: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A fixed-size pool of persistent worker threads executing scoped jobs;
/// see the [module docs](self) for semantics and [`global`] for the
/// process-wide instance.
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` persistent workers (clamped to at
    /// least one). Workers park on the job queue and live until the pool
    /// is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a worker thread — the same
    /// failure mode (and rarity) as `std::thread::scope`'s spawns.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("chaff-pool-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn pool worker thread")
            })
            .collect();
        WorkerPool { queue, workers }
    }

    /// Number of worker threads (the scoping thread helps too, so up to
    /// `threads() + 1` tasks can run concurrently during a wait).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f` with a [`PoolScope`] that can spawn borrowing closures
    /// onto the pool, returning `f`'s result after **all** spawned
    /// closures have finished. If any spawned closure panicked, the
    /// panic payload with the lowest spawn index is re-raised here.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope PoolScope<'scope, 'env>) -> R,
    {
        let scope = PoolScope {
            pool: self,
            state: Arc::new(ScopeState {
                sync: Mutex::new(ScopeSync {
                    pending: 0,
                    panic: None,
                }),
                done: Condvar::new(),
            }),
            next_seq: std::cell::Cell::new(0),
            env: std::marker::PhantomData,
        };
        // The guard waits for every spawned job even when `f` unwinds:
        // queued jobs borrow from the caller's frame, so returning (or
        // unwinding past) this frame before they finish would be unsound.
        let guard = WaitGuard { scope: &scope };
        let result = f(&scope);
        drop(guard);
        result
    }

    /// Enqueues a type-erased job and wakes one worker.
    fn push(&self, job: Job) {
        {
            let mut state = lock(&self.queue.state);
            state.jobs.push_back(job);
        }
        self.queue.available.notify_one();
    }

    /// Pops a queued job without blocking (used by helping waiters).
    fn try_pop(&self) -> Option<Job> {
        lock(&self.queue.state).jobs.pop_front()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // No scope can be alive here (scopes borrow the pool), so the
        // queue holds no jobs anyone waits on; workers drain leftovers
        // and exit.
        lock(&self.queue.state).shutdown = true;
        self.queue.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The process-wide pool, created on first use with one worker per
/// available core. Shared by every sharded hot path in the workspace, so
/// repeated detection/simulation calls reuse the same parked threads.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    })
}

/// Locks a mutex, ignoring poisoning: queue and scope state are plain
/// bookkeeping (no invariant spans a panic — jobs run *outside* the
/// lock), so a panicked holder leaves consistent data.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut state = lock(&queue.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = queue
                    .available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job();
    }
}

/// Per-scope synchronization: outstanding job count and the winning
/// (lowest spawn index) panic payload.
struct ScopeState {
    sync: Mutex<ScopeSync>,
    /// Signalled whenever a job finishes.
    done: Condvar,
}

struct ScopeSync {
    pending: usize,
    panic: Option<(usize, Box<dyn std::any::Any + Send>)>,
}

/// Handle for spawning borrowed closures inside [`WorkerPool::scope`];
/// mirrors [`std::thread::Scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    next_seq: std::cell::Cell<usize>,
    /// Invariant in `'env`, like `std::thread::Scope`.
    env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Spawns a closure onto the pool. The closure may borrow anything
    /// that outlives the enclosing [`WorkerPool::scope`] call; the scope
    /// waits for it before returning. Spawn order is the panic-priority
    /// order (lowest spawn index wins), matching the shard order the
    /// `thread::scope` call sites joined in.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        lock(&self.state.sync).pending += 1;
        let state = Arc::clone(&self.state);
        let job = move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            let mut sync = lock(&state.sync);
            if let Err(payload) = result {
                match &sync.panic {
                    Some((winner, _)) if *winner <= seq => {}
                    _ => sync.panic = Some((seq, payload)),
                }
            }
            sync.pending -= 1;
            drop(sync);
            state.done.notify_all();
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: the job is erased to `'static` so persistent workers
        // can hold it, but it only borrows data living at least as long
        // as `'env`. `WorkerPool::scope` cannot return before this job
        // has run to completion: `WaitGuard` blocks (even during unwind)
        // until `pending == 0`, and `pending` was incremented above
        // before the job became reachable. Trait-object transmutes over
        // a lifetime parameter are layout-identical fat pointers.
        #[allow(unsafe_code)]
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.push(job);
    }
}

/// Blocks until the scope's jobs have drained, running queued jobs on
/// this thread while waiting; returns the winning panic payload, if any.
fn wait_for_scope(pool: &WorkerPool, state: &ScopeState) -> Option<Box<dyn std::any::Any + Send>> {
    loop {
        // Help: run queued jobs (this scope's or a nested one's) instead
        // of parking a core. Every waiter making progress on the shared
        // queue is also the nested-scope deadlock-freedom argument.
        while let Some(job) = pool.try_pop() {
            job();
        }
        let sync = lock(&state.sync);
        if sync.pending == 0 {
            let mut sync = sync;
            return sync.panic.take().map(|(_, payload)| payload);
        }
        // A short wait (instead of a pure condvar sleep) re-polls the
        // queue: a still-running job may enqueue nested work that only
        // this thread is free to execute.
        let (sync, _) = state
            .done
            .wait_timeout(sync, Duration::from_millis(1))
            .unwrap_or_else(PoisonError::into_inner);
        drop(sync);
    }
}

/// Waits for the scope on drop, so `scope` never unwinds past live
/// borrowed jobs; re-raises a job panic when the scoping closure itself
/// completed normally.
struct WaitGuard<'a, 'pool, 'env> {
    scope: &'a PoolScope<'pool, 'env>,
}

impl Drop for WaitGuard<'_, '_, '_> {
    fn drop(&mut self) {
        let payload = wait_for_scope(self.scope.pool, &self.scope.state);
        if let Some(payload) = payload {
            if !std::thread::panicking() {
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_jobs_borrow_disjoint_mutable_slices() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0usize; 64];
        let chunk = 7;
        pool.scope(|scope| {
            for (s, slice) in data.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (j, x) in slice.iter_mut().enumerate() {
                        *x = s * chunk + j;
                    }
                });
            }
        });
        let expected: Vec<usize> = (0..64).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..500 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn scope_returns_closure_result() {
        let pool = WorkerPool::new(1);
        let got = pool.scope(|scope| {
            scope.spawn(|| {});
            42
        });
        assert_eq!(got, 42);
    }

    #[test]
    fn lowest_spawn_index_panic_wins() {
        let pool = WorkerPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                for i in 0..8 {
                    scope.spawn(move || {
                        if i % 2 == 1 {
                            panic!("shard {i} failed");
                        }
                    });
                }
            });
        }))
        .unwrap_err();
        let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(message, "shard 1 failed");
    }

    #[test]
    fn panicking_scope_closure_still_waits_for_jobs() {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&finished);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                for _ in 0..4 {
                    let finished = Arc::clone(&finished);
                    scope.spawn(move || {
                        std::thread::sleep(Duration::from_millis(5));
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("closure panic");
            });
        }));
        assert!(caught.is_err());
        // Every job ran to completion before `scope` unwound.
        assert_eq!(observed.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // One worker: the outer job occupies it, so the inner scope can
        // only finish because waiters help run queued jobs.
        let pool = WorkerPool::new(1);
        let mut outer = vec![0usize; 4];
        pool.scope(|scope| {
            for (i, out) in outer.iter_mut().enumerate() {
                scope.spawn(move || {
                    let pool = global();
                    let mut inner = [0usize; 3];
                    pool.scope(|inner_scope| {
                        for (j, x) in inner.iter_mut().enumerate() {
                            inner_scope.spawn(move || *x = j + 1);
                        }
                    });
                    *out = i + inner.iter().sum::<usize>();
                });
            }
        });
        assert_eq!(outer, vec![6, 7, 8, 9]);
    }

    #[test]
    fn sequential_scopes_reuse_the_same_pool() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let mut data = [0usize; 8];
            pool.scope(|scope| {
                for x in data.iter_mut() {
                    scope.spawn(move || *x = round);
                }
            });
            assert!(data.iter().all(|&x| x == round), "round {round}");
        }
    }

    #[test]
    fn global_pool_is_a_singleton_with_at_least_one_worker() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }
}

//! The maximum-likelihood (ML) chaff strategy (Sec. IV-B).

use super::{validate_user, ChaffStrategy};
use crate::trellis;
use crate::Result;
use chaff_markov::{MarkovChain, Trajectory};
use rand::RngCore;

/// The maximum-likelihood (ML) strategy (Sec. IV-B).
///
/// Sends the chaff along the globally most likely trajectory — the
/// solution of eq. (2), computed as a shortest path over the trellis of
/// Fig. 2. By construction its likelihood is at least the user's, so the
/// ML detector is guaranteed to pick the chaff (or tie). The chaff
/// trajectory depends only on the mobility model, not on the user's actual
/// movements, so it can be computed before the service starts.
///
/// Its weakness (eq. 12): the most likely trajectory tends to sit in
/// high-mass cells, so the user still co-locates with it a
/// `Σ_t π(x_{2,t})/T` fraction of time — and when the steady state is very
/// skewed, parking many IM chaffs can beat it (Lemma V.1 remark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MlStrategy;

impl ChaffStrategy for MlStrategy {
    fn name(&self) -> &'static str {
        "ML"
    }

    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>> {
        let _ = rng; // deterministic
        validate_user(chain, user)?;
        let path = trellis::most_likely_trajectory(chain, user.len(), None)?;
        Ok(vec![path.trajectory; num_chaffs])
    }

    fn deterministic_map(&self, chain: &MarkovChain, observed: &Trajectory) -> Option<Trajectory> {
        // Γ_ML does not depend on the observed trajectory: the chaff always
        // follows the fixed global ML trajectory of matching length.
        trellis::most_likely_trajectory(chain, observed.len(), None)
            .ok()
            .map(|p| p.trajectory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::MlDetector;
    use chaff_markov::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chaff_always_wins_or_ties_the_likelihood_race() {
        let mut rng = StdRng::seed_from_u64(21);
        for kind in ModelKind::ALL {
            let chain = MarkovChain::new(kind.build(10, &mut rng).unwrap()).unwrap();
            for _ in 0..20 {
                let user = chain.sample_trajectory(40, &mut rng);
                let chaff = &MlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
                assert!(
                    chain.log_likelihood(chaff) >= chain.log_likelihood(&user) - 1e-9,
                    "{kind}"
                );
            }
        }
    }

    #[test]
    fn detector_never_uniquely_picks_the_user() {
        let mut rng = StdRng::seed_from_u64(22);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap();
        for _ in 0..50 {
            let user = chain.sample_trajectory(30, &mut rng);
            let chaff = MlStrategy.generate(&chain, &user, 1, &mut rng).unwrap();
            let mut observed = vec![user];
            observed.extend(chaff);
            let d = MlDetector.detect(&chain, &observed).unwrap();
            assert!(d.tie_set().contains(&1), "chaff must be in the argmax set");
        }
    }

    #[test]
    fn trajectory_is_independent_of_the_user() {
        let mut rng = StdRng::seed_from_u64(23);
        let chain =
            MarkovChain::new(ModelKind::SpatiallySkewed.build(10, &mut rng).unwrap()).unwrap();
        let u1 = chain.sample_trajectory(25, &mut rng);
        let u2 = chain.sample_trajectory(25, &mut rng);
        let c1 = MlStrategy.generate(&chain, &u1, 1, &mut rng).unwrap();
        let c2 = MlStrategy.generate(&chain, &u2, 1, &mut rng).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn duplicates_fill_the_chaff_budget() {
        let mut rng = StdRng::seed_from_u64(24);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(5, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(10, &mut rng);
        let chaffs = MlStrategy.generate(&chain, &user, 4, &mut rng).unwrap();
        assert_eq!(chaffs.len(), 4);
        assert!(chaffs.windows(2).all(|w| w[0] == w[1]));
    }
}

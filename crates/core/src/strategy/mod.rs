//! The user's side: chaff-control strategies (Sec. IV and VI-B).
//!
//! A strategy decides where the chaff services are launched and migrated.
//! The challenge (Sec. I) is to *maximally resemble the real service while
//! minimally co-locating with it*: a chaff that never moves is conspicuous,
//! and a chaff glued to the user protects nothing.
//!
//! Two interfaces are provided:
//!
//! * [`ChaffStrategy`] — the batch interface: given the user's (full)
//!   trajectory, produce `N − 1` chaff trajectories. Offline strategies
//!   (ML, OO) need the whole trajectory; online strategies implement this
//!   by replaying their per-slot controller.
//! * [`OnlineChaffController`] — the per-slot interface used by the MEC
//!   simulator: observe the user's current cell, emit the chaff's next
//!   cell. Only online strategies (IM, CML, MO) provide controllers.
//!
//! Deterministic strategies additionally expose their strategy map
//! `Γ(x)` — the chaff trajectory they would produce for a hypothetical
//! user trajectory `x` — via [`ChaffStrategy::deterministic_map`]. This is
//! what the advanced eavesdropper exploits (Sec. VI-A) and what the robust
//! strategies randomize away (Sec. VI-B).

mod cml;
mod im;
mod ml;
mod mo;
mod oo;
mod robust;
mod rollout;

pub(crate) use cml::pick_constrained_argmax;
pub use cml::{CmlController, CmlStrategy};
pub use im::{ImController, ImStrategy};
pub use ml::MlStrategy;
pub use mo::{MoController, MoStrategy};
pub use oo::OoStrategy;
pub use robust::{RmlStrategy, RmoStrategy, RooStrategy};
pub use rollout::{RolloutStrategy, DEFAULT_ROLLOUT_SAMPLES};

use crate::Result;
use chaff_markov::{CellId, EpochSchedule, MarkovChain, Trajectory};
use rand::RngCore;
use std::fmt;
use std::str::FromStr;

/// A chaff-control strategy: produces chaff trajectories that accompany
/// the user's real service trajectory.
pub trait ChaffStrategy {
    /// Short name used in reports and figures (e.g. `"OO"`).
    fn name(&self) -> &'static str;

    /// Generates `num_chaffs` chaff trajectories for the given user
    /// trajectory.
    ///
    /// Deterministic strategies return `num_chaffs` copies of their single
    /// trajectory — the paper notes that against a deterministic detector
    /// at most one chaff has any effect (Sec. IV-B), so extra budget is
    /// spent on duplicates rather than left unused.
    ///
    /// # Errors
    ///
    /// Returns an error when the user trajectory is empty, visits cells
    /// outside the model, or (for constrained variants) no feasible chaff
    /// trajectory exists.
    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>>;

    /// The strategy map `Γ(x)` of Sec. VI-A for deterministic strategies:
    /// the chaff trajectory this strategy would emit if `observed` were the
    /// user's trajectory. Randomized strategies return `None`.
    ///
    /// Robust strategies return the map of their deterministic *base*
    /// strategy: the advanced eavesdropper knows the strategy class but not
    /// its private randomness, so the base map is the best deterministic
    /// predictor available to it.
    fn deterministic_map(
        &self,
        _chain: &MarkovChain,
        _observed: &Trajectory,
    ) -> Option<Trajectory> {
        None
    }
}

/// The chain source an online controller steps against: one chain per
/// epoch under an [`EpochSchedule`], selected by the controller's own
/// call count. The fleet drivers call a controller exactly once per
/// slot, in order, so the counter *is* the slot index.
///
/// This keeps a time-varying chaff's cross-slot state (walk position,
/// likelihood gap) *continuous* across epoch boundaries — exactly like
/// the users it must resemble, whose arrivals are drawn from the
/// slot-active chain conditioned on wherever they were one slot ago. A
/// stationary source ([`EpochChains::stationary`]) always yields its
/// single chain, so the one-epoch path is the unchanged stationary code.
#[derive(Debug, Clone)]
pub struct EpochChains<'a> {
    chains: Vec<&'a MarkovChain>,
    schedule: EpochSchedule,
    slot: usize,
}

impl<'a> EpochChains<'a> {
    /// A source that yields `chain` on every slot.
    pub fn stationary(chain: &'a MarkovChain) -> Self {
        EpochChains {
            chains: vec![chain],
            schedule: EpochSchedule::stationary(),
            slot: 0,
        }
    }

    /// A source yielding `chains[schedule.epoch_of(slot)]` at each slot.
    ///
    /// # Errors
    ///
    /// Returns
    /// [`MarkovError::Empty`](chaff_markov::MarkovError::Empty) when no
    /// chains are supplied,
    /// [`MarkovError::LengthMismatch`](chaff_markov::MarkovError::LengthMismatch)
    /// when `chains` does not cover `schedule.num_epochs()`, and
    /// [`MarkovError::DimensionMismatch`](chaff_markov::MarkovError::DimensionMismatch)
    /// when the epochs disagree on the cell space.
    pub fn new(chains: Vec<&'a MarkovChain>, schedule: EpochSchedule) -> Result<Self> {
        let first = chains
            .first()
            .ok_or(crate::CoreError::Markov(chaff_markov::MarkovError::Empty))?;
        if chains.len() != schedule.num_epochs() {
            return Err(crate::CoreError::Markov(
                chaff_markov::MarkovError::LengthMismatch {
                    expected: schedule.num_epochs(),
                    found: chains.len(),
                },
            ));
        }
        let states = first.num_states();
        for chain in &chains {
            if chain.num_states() != states {
                return Err(crate::CoreError::Markov(
                    chaff_markov::MarkovError::DimensionMismatch {
                        expected: states,
                        found: chain.num_states(),
                    },
                ));
            }
        }
        Ok(EpochChains {
            chains,
            schedule,
            slot: 0,
        })
    }

    /// The chain governing the upcoming slot; advances the slot clock.
    pub(crate) fn advance(&mut self) -> &'a MarkovChain {
        let chain = self.chains[self.schedule.epoch_of(self.slot)];
        self.slot += 1;
        chain
    }
}

/// A per-slot chaff controller for online operation inside the MEC
/// simulator.
///
/// Call [`next`](OnlineChaffController::next) once per slot, in order,
/// passing the user's current cell; it returns the chaff's cell for that
/// slot. The first call corresponds to the launch slot `t = 1`.
pub trait OnlineChaffController {
    /// Decides the chaff's cell for the current slot.
    ///
    /// `avoid` lists cells the chaff should additionally avoid this slot
    /// (used by the robust RMO strategy); controllers treat it as a soft
    /// constraint and may ignore it when no admissible move exists.
    fn next(&mut self, user_now: CellId, avoid: &[CellId], rng: &mut dyn RngCore) -> CellId;
}

/// Replays an online controller over a full user trajectory — the batch
/// form of an online strategy.
pub(crate) fn replay_controller<C: OnlineChaffController>(
    controller: &mut C,
    user: &Trajectory,
    rng: &mut dyn RngCore,
) -> Trajectory {
    let mut out = Trajectory::with_capacity(user.len());
    for user_now in user.iter() {
        out.push(controller.next(user_now, &[], rng));
    }
    out
}

/// Validates a user trajectory against the model's state space.
pub(crate) fn validate_user(chain: &MarkovChain, user: &Trajectory) -> Result<()> {
    if user.is_empty() {
        return Err(crate::CoreError::EmptyTrajectory);
    }
    for cell in user.iter() {
        if cell.index() >= chain.num_states() {
            return Err(crate::CoreError::CellOutOfRange {
                cell: cell.index(),
                states: chain.num_states(),
            });
        }
    }
    Ok(())
}

/// Identifier for every strategy shipped with this crate; the evaluation
/// harness and the `repro` binary select strategies by this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Impersonating (Sec. IV-A).
    Im,
    /// Maximum likelihood (Sec. IV-B).
    Ml,
    /// Constrained maximum likelihood (Sec. V-C1).
    Cml,
    /// Optimal offline, Algorithm 1 (Sec. IV-C).
    Oo,
    /// Myopic online, Algorithm 2 (Sec. IV-D).
    Mo,
    /// Robust ML (Sec. VI-B1).
    Rml,
    /// Robust OO (Sec. VI-B2).
    Roo,
    /// Robust MO (Sec. VI-B3).
    Rmo,
    /// Sampling-based one-step lookahead (extension of Sec. IV-D's MDP).
    Rollout,
}

impl StrategyKind {
    /// All strategies in the paper's presentation order.
    pub const ALL: [StrategyKind; 9] = [
        StrategyKind::Im,
        StrategyKind::Ml,
        StrategyKind::Cml,
        StrategyKind::Oo,
        StrategyKind::Mo,
        StrategyKind::Rml,
        StrategyKind::Roo,
        StrategyKind::Rmo,
        StrategyKind::Rollout,
    ];

    /// Instantiates the strategy with default parameters.
    pub fn build(self) -> Box<dyn ChaffStrategy + Send + Sync> {
        match self {
            StrategyKind::Im => Box::new(ImStrategy),
            StrategyKind::Ml => Box::new(MlStrategy),
            StrategyKind::Cml => Box::new(CmlStrategy),
            StrategyKind::Oo => Box::new(OoStrategy),
            StrategyKind::Mo => Box::new(MoStrategy),
            StrategyKind::Rml => Box::new(RmlStrategy),
            StrategyKind::Roo => Box::new(RooStrategy),
            StrategyKind::Rmo => Box::new(RmoStrategy),
            StrategyKind::Rollout => Box::new(RolloutStrategy::default()),
        }
    }

    /// Whether the strategy output is a deterministic function of the user
    /// trajectory (making it vulnerable to the advanced eavesdropper).
    pub fn is_deterministic(self) -> bool {
        matches!(
            self,
            StrategyKind::Ml | StrategyKind::Cml | StrategyKind::Oo | StrategyKind::Mo
        )
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrategyKind::Im => "IM",
            StrategyKind::Ml => "ML",
            StrategyKind::Cml => "CML",
            StrategyKind::Oo => "OO",
            StrategyKind::Mo => "MO",
            StrategyKind::Rml => "RML",
            StrategyKind::Roo => "ROO",
            StrategyKind::Rmo => "RMO",
            StrategyKind::Rollout => "ROLLOUT",
        };
        f.write_str(s)
    }
}

impl FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "IM" => Ok(StrategyKind::Im),
            "ML" => Ok(StrategyKind::Ml),
            "CML" => Ok(StrategyKind::Cml),
            "OO" => Ok(StrategyKind::Oo),
            "MO" => Ok(StrategyKind::Mo),
            "RML" => Ok(StrategyKind::Rml),
            "ROO" => Ok(StrategyKind::Roo),
            "RMO" => Ok(StrategyKind::Rmo),
            "ROLLOUT" => Ok(StrategyKind::Rollout),
            other => Err(format!("unknown strategy '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn strategy_kind_round_trips_through_strings() {
        for kind in StrategyKind::ALL {
            let parsed: StrategyKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<StrategyKind>().is_err());
    }

    #[test]
    fn all_strategies_generate_valid_trajectories() {
        let mut rng = StdRng::seed_from_u64(3);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(6, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(20, &mut rng);
        for kind in StrategyKind::ALL {
            let strategy = kind.build();
            let chaffs = strategy.generate(&chain, &user, 3, &mut rng).unwrap();
            assert_eq!(chaffs.len(), 3, "{kind}");
            for chaff in &chaffs {
                assert_eq!(chaff.len(), user.len(), "{kind}");
                for cell in chaff.iter() {
                    assert!(cell.index() < chain.num_states(), "{kind}");
                }
            }
        }
    }

    #[test]
    fn deterministic_strategies_expose_their_map() {
        let mut rng = StdRng::seed_from_u64(5);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(6, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(15, &mut rng);
        for kind in StrategyKind::ALL {
            let strategy = kind.build();
            let map = strategy.deterministic_map(&chain, &user);
            if kind == StrategyKind::Im || kind == StrategyKind::Rollout {
                assert!(map.is_none(), "{kind} should not expose a map");
            } else {
                assert!(map.is_some(), "{kind} should expose a map");
            }
            if kind.is_deterministic() {
                // Γ(user) must equal what generate() produces.
                let chaffs = strategy.generate(&chain, &user, 1, &mut rng).unwrap();
                assert_eq!(chaffs[0], map.unwrap(), "{kind}");
            }
        }
    }

    #[test]
    fn validate_user_rejects_bad_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(4, &mut rng).unwrap()).unwrap();
        assert!(validate_user(&chain, &Trajectory::new()).is_err());
        assert!(validate_user(&chain, &Trajectory::from_indices([9])).is_err());
        assert!(validate_user(&chain, &Trajectory::from_indices([0, 3])).is_ok());
    }
}

//! The myopic online (MO) chaff strategy — Algorithm 2 (Sec. IV-D).

use super::{replay_controller, validate_user, ChaffStrategy, OnlineChaffController};
use crate::{loglik_cmp, Result};
use chaff_markov::{CellId, MarkovChain, Trajectory};
use rand::RngCore;
use std::cmp::Ordering;

/// The myopic online (MO) strategy — Algorithm 2 (Sec. IV-D).
///
/// The online counterpart of [`OoStrategy`](super::OoStrategy): it only
/// observes the user's *past* trajectory. The paper casts the online
/// problem as a finite-horizon MDP whose per-slot cost is the
/// eavesdropper's per-slot tracking accuracy, and MO is the myopic policy
/// (eq. 9) minimizing the immediate cost:
///
/// 1. move to the most likely next cell `x⁽¹⁾` if it does not coincide
///    with the user;
/// 2. otherwise move to the second most likely cell `x⁽²⁾` — but only if
///    the chaff's cumulative likelihood stays at least the user's
///    (`γ_t ≤ 0`);
/// 3. otherwise accept co-location at `x⁽¹⁾` this slot, keeping the
///    likelihood race winnable in future slots.
///
/// Theorem V.5 shows MO also drives per-slot tracking accuracy to zero
/// when `E[c_t] < 0`, at an `O(1/T)` time-average rate (Corollary V.6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoStrategy;

impl ChaffStrategy for MoStrategy {
    fn name(&self) -> &'static str {
        "MO"
    }

    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>> {
        validate_user(chain, user)?;
        let mut controller = MoController::new(chain);
        let chaff = replay_controller(&mut controller, user, rng);
        Ok(vec![chaff; num_chaffs])
    }

    fn deterministic_map(&self, chain: &MarkovChain, observed: &Trajectory) -> Option<Trajectory> {
        if observed.is_empty() {
            return None;
        }
        let mut controller = MoController::new(chain);
        let mut out = Trajectory::with_capacity(observed.len());
        for user_now in observed.iter() {
            out.push(controller.decide(user_now, &[]));
        }
        Some(out)
    }
}

/// Online form of [`MoStrategy`]; also usable directly by the MEC
/// simulator.
///
/// The controller tracks the chaff's previous cell, the user's previous
/// cell and the log-likelihood gap `γ_t` (Sec. IV-D). It is fully
/// deterministic — the `rng` required by the
/// [`OnlineChaffController`] interface is never consumed.
#[derive(Debug, Clone)]
pub struct MoController<'a> {
    chains: super::EpochChains<'a>,
    prev_chaff: Option<CellId>,
    prev_user: Option<CellId>,
    /// γ_{t-1}: cumulative user-minus-chaff log-likelihood gap.
    gamma: f64,
}

impl<'a> MoController<'a> {
    /// Creates a controller for one chaff over a stationary chain.
    pub fn new(chain: &'a MarkovChain) -> Self {
        Self::scheduled(super::EpochChains::stationary(chain))
    }

    /// Creates a controller stepping against epoch-active chains: γ's
    /// per-slot increments are scored under the slot-active chain — the
    /// same tables a schedule-aware detector applies to that slot — and
    /// the chaff/user positions carry across epoch boundaries.
    pub fn scheduled(chains: super::EpochChains<'a>) -> Self {
        MoController {
            chains,
            prev_chaff: None,
            prev_user: None,
            gamma: 0.0,
        }
    }

    /// The current log-likelihood gap `γ_t` (positive = user more likely).
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Decides the chaff's cell for this slot given the user's cell.
    ///
    /// `avoid` adds extra forbidden cells (the RMO strategy's avoid lists);
    /// it is best-effort: if every admissible cell is forbidden the
    /// controller ignores the list rather than stall the chaff.
    pub fn decide(&mut self, user_now: CellId, avoid: &[CellId]) -> CellId {
        let chain = self.chains.advance();
        let choice = match self.prev_chaff {
            None => self.decide_first(chain, user_now, avoid),
            Some(prev) => self.decide_step(chain, prev, user_now, avoid),
        };
        // Update γ with the realized moves.
        let user_inc = match self.prev_user {
            None => chain.initial().log_prob(user_now),
            Some(pu) => chain.matrix().log_prob(pu, user_now),
        };
        let chaff_inc = match self.prev_chaff {
            None => chain.initial().log_prob(choice),
            Some(pc) => chain.matrix().log_prob(pc, choice),
        };
        self.gamma = add_gap(self.gamma, user_inc, chaff_inc);
        self.prev_chaff = Some(choice);
        self.prev_user = Some(user_now);
        choice
    }

    /// Slot 1 (lines 1–11 of Algorithm 2), using the steady state.
    fn decide_first(&self, chain: &MarkovChain, user_now: CellId, avoid: &[CellId]) -> CellId {
        let pi = chain.initial();
        let first = argmax_dist(pi, &[], avoid);
        let Some(first) = first else {
            return user_now; // degenerate: no admissible cell at all
        };
        if first != user_now {
            return first;
        }
        match argmax_dist(pi, &[user_now], avoid) {
            Some(second) if loglik_cmp(pi.prob(second), pi.prob(user_now)) != Ordering::Less => {
                second
            }
            _ => first,
        }
    }

    /// Slots t ≥ 2 (lines 12–23 of Algorithm 2).
    fn decide_step(
        &self,
        chain: &MarkovChain,
        prev: CellId,
        user_now: CellId,
        avoid: &[CellId],
    ) -> CellId {
        let matrix = chain.matrix();
        let first = argmax_row(chain, prev, &[], avoid);
        let Some(first) = first else {
            return prev; // no successors at all: stay put
        };
        if first != user_now {
            return first;
        }
        // x⁽¹⁾ collides with the user; try the second ML move if it keeps
        // the cumulative likelihood race at least tied (γ_t ≤ 0).
        let user_step = match self.prev_user {
            Some(pu) => matrix.log_prob(pu, user_now),
            None => chain.initial().log_prob(user_now),
        };
        if let Some(second) = argmax_row(chain, prev, &[user_now], avoid) {
            let gamma_if_second = add_gap(self.gamma, user_step, matrix.log_prob(prev, second));
            if loglik_cmp(gamma_if_second, 0.0) != Ordering::Greater {
                return second;
            }
        }
        first
    }
}

impl OnlineChaffController for MoController<'_> {
    fn next(&mut self, user_now: CellId, avoid: &[CellId], _rng: &mut dyn RngCore) -> CellId {
        self.decide(user_now, avoid)
    }
}

/// `gamma + user_inc − chaff_inc` with `(−inf) − (−inf) = 0` (both moves
/// impossible — no information either way).
fn add_gap(gamma: f64, user_inc: f64, chaff_inc: f64) -> f64 {
    let diff = if user_inc == f64::NEG_INFINITY && chaff_inc == f64::NEG_INFINITY {
        0.0
    } else {
        user_inc - chaff_inc
    };
    if gamma.is_infinite() && diff.is_infinite() && gamma.signum() != diff.signum() {
        0.0
    } else {
        gamma + diff
    }
}

/// Argmax over the steady state, skipping `exclude` and (best-effort)
/// `avoid`. Retries without `avoid` when it eliminates every candidate.
fn argmax_dist(
    pi: &chaff_markov::StateDistribution,
    exclude: &[CellId],
    avoid: &[CellId],
) -> Option<CellId> {
    let pick = |use_avoid: bool| -> Option<CellId> {
        let mut best: Option<(CellId, f64)> = None;
        for j in 0..pi.num_states() {
            let cell = CellId::new(j);
            if exclude.contains(&cell) || (use_avoid && avoid.contains(&cell)) {
                continue;
            }
            let p = pi.prob(cell);
            match best {
                Some((_, bp)) if bp >= p => {}
                _ => best = Some((cell, p)),
            }
        }
        best.map(|(c, _)| c)
    };
    pick(true).or_else(|| pick(false))
}

/// Argmax over successors of `prev`, skipping `exclude` and (best-effort)
/// `avoid`.
fn argmax_row(
    chain: &MarkovChain,
    prev: CellId,
    exclude: &[CellId],
    avoid: &[CellId],
) -> Option<CellId> {
    let pick = |use_avoid: bool| -> Option<CellId> {
        let mut best: Option<(CellId, f64)> = None;
        for (cell, p) in chain.matrix().successors(prev) {
            if exclude.contains(&cell) || (use_avoid && avoid.contains(&cell)) {
                continue;
            }
            match best {
                Some((_, bp)) if bp >= p => {}
                _ => best = Some((cell, p)),
            }
        }
        best.map(|(c, _)| c)
    };
    pick(true).or_else(|| pick(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::models::ModelKind;
    use chaff_markov::TransitionMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn follows_algorithm_2_case_one() {
        // Whenever x(1) differs from the user's cell, MO must take it.
        let mut rng = StdRng::seed_from_u64(51);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(8, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(40, &mut rng);
        let chaff = &MoStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        for t in 1..40 {
            let x1 = chain
                .matrix()
                .argmax_successor(chaff.cell(t - 1), None)
                .unwrap()
                .0;
            if x1 != user.cell(t) {
                assert_eq!(chaff.cell(t), x1, "slot {t}");
            }
        }
    }

    #[test]
    fn gamma_tracks_the_likelihood_gap() {
        let mut rng = StdRng::seed_from_u64(52);
        let chain =
            MarkovChain::new(ModelKind::TemporallySkewed.build(10, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(30, &mut rng);
        let mut controller = MoController::new(&chain);
        let mut chaff = Trajectory::new();
        for cell in user.iter() {
            chaff.push(controller.decide(cell, &[]));
        }
        let expected = chain.log_likelihood(&user) - chain.log_likelihood(&chaff);
        assert!((controller.gamma() - expected).abs() < 1e-9);
    }

    #[test]
    fn chaff_likelihood_stays_competitive_on_skewed_models() {
        // On model (c)/(d) MO's chaff takes the high-probability drift move
        // almost every slot, so its cumulative likelihood should not fall
        // behind the user's by the end of the horizon.
        let mut rng = StdRng::seed_from_u64(53);
        for kind in [
            ModelKind::TemporallySkewed,
            ModelKind::SpatioTemporallySkewed,
        ] {
            let chain = MarkovChain::new(kind.build(10, &mut rng).unwrap()).unwrap();
            let mut wins = 0;
            let runs = 30;
            for _ in 0..runs {
                let user = chain.sample_trajectory(100, &mut rng);
                let chaff = &MoStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
                if chain.log_likelihood(chaff) >= chain.log_likelihood(&user) - 1e-9 {
                    wins += 1;
                }
            }
            assert!(wins >= runs * 8 / 10, "{kind}: wins = {wins}/{runs}");
        }
    }

    #[test]
    fn avoids_user_when_second_choice_is_free() {
        // Two exactly-equal top choices: dodging to x(2) costs nothing in
        // likelihood (γ stays 0 ≤ 0), so MO must never co-locate.
        let m = TransitionMatrix::from_rows(vec![
            vec![0.45, 0.45, 0.10],
            vec![0.45, 0.45, 0.10],
            vec![0.45, 0.45, 0.10],
        ])
        .unwrap();
        let chain = MarkovChain::new(m).unwrap();
        let user = Trajectory::from_indices([0, 0, 0, 0]);
        let chaff = &MoStrategy
            .generate(&chain, &user, 1, &mut rand::rng())
            .unwrap()[0];
        assert_eq!(user.coincidences(chaff), 0, "chaff = {chaff}");
    }

    #[test]
    fn co_locates_rather_than_losing_the_race() {
        // One dominant cell: dodging to the second choice is so expensive
        // that γ would flip positive, so case 3 applies and MO co-locates.
        let m = TransitionMatrix::from_rows(vec![
            vec![0.98, 0.01, 0.01],
            vec![0.98, 0.01, 0.01],
            vec![0.98, 0.01, 0.01],
        ])
        .unwrap();
        let chain = MarkovChain::new(m).unwrap();
        let user = Trajectory::from_indices([0, 0, 0, 0, 0, 0]);
        let chaff = &MoStrategy
            .generate(&chain, &user, 1, &mut rand::rng())
            .unwrap()[0];
        // After at most one dodge the gap is too big; most slots co-locate.
        assert!(user.coincidences(chaff) >= 4, "chaff = {chaff}");
    }

    #[test]
    fn deterministic_map_matches_generate() {
        let mut rng = StdRng::seed_from_u64(54);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(7, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(20, &mut rng);
        let map = MoStrategy.deterministic_map(&chain, &user).unwrap();
        let gen = MoStrategy.generate(&chain, &user, 1, &mut rng).unwrap();
        assert_eq!(map, gen[0]);
    }

    #[test]
    fn avoid_list_is_honored_when_possible() {
        let mut rng = StdRng::seed_from_u64(55);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(8, &mut rng).unwrap()).unwrap();
        let mut plain = MoController::new(&chain);
        let mut avoiding = MoController::new(&chain);
        let user = CellId::new(0);
        let plain_first = plain.decide(user, &[]);
        let avoided = avoiding.decide(user, &[plain_first]);
        assert_ne!(avoided, plain_first);
    }
}

//! The impersonating (IM) chaff strategy (Sec. IV-A).

use super::{validate_user, ChaffStrategy, OnlineChaffController};
use crate::Result;
use chaff_markov::{CellId, MarkovChain, Trajectory};
use rand::RngCore;

/// The impersonating (IM) strategy (Sec. IV-A).
///
/// Each chaff follows an independent trajectory drawn from the *same*
/// Markov chain as the user, so all `N` observed trajectories are
/// statistically identical and any detector — including the ML detector —
/// is reduced to a random guess. Its accuracy floor is eq. (11):
/// `P_IM = Σπ² + (1 − Σπ²)/N`, bounded away from zero even as `N → ∞`
/// unless the steady state is uniform.
///
/// IM is the only strategy in the paper that is *fully robust*: knowing
/// the strategy gives the advanced eavesdropper no extra power
/// (Sec. VI-A1), and the only one whose accuracy improves with more chaffs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImStrategy;

impl ChaffStrategy for ImStrategy {
    fn name(&self) -> &'static str {
        "IM"
    }

    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>> {
        validate_user(chain, user)?;
        Ok((0..num_chaffs)
            .map(|_| chain.sample_trajectory(user.len(), rng))
            .collect())
    }
}

/// Online form of [`ImStrategy`]: a chaff that walks the user's chain
/// independently, one step per slot. On a time-varying model
/// ([`scheduled`](Self::scheduled)) the walk stays continuous — each
/// step is drawn from the slot-active chain conditioned on wherever the
/// chaff was one slot ago, exactly the process the users follow.
#[derive(Debug, Clone)]
pub struct ImController<'a> {
    chains: super::EpochChains<'a>,
    current: Option<CellId>,
}

impl<'a> ImController<'a> {
    /// Creates a controller for one chaff over a stationary chain.
    pub fn new(chain: &'a MarkovChain) -> Self {
        Self::scheduled(super::EpochChains::stationary(chain))
    }

    /// Creates a controller stepping against epoch-active chains.
    pub fn scheduled(chains: super::EpochChains<'a>) -> Self {
        ImController {
            chains,
            current: None,
        }
    }
}

impl OnlineChaffController for ImController<'_> {
    fn next(&mut self, _user_now: CellId, _avoid: &[CellId], rng: &mut dyn RngCore) -> CellId {
        let chain = self.chains.advance();
        let next = match self.current {
            None => chain.initial().sample(rng),
            Some(cell) => chain.step(cell, rng),
        };
        self.current = Some(next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::TransitionMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> MarkovChain {
        let m = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.3, 0.7]]).unwrap();
        MarkovChain::new(m).unwrap()
    }

    #[test]
    fn generates_independent_trajectories_of_user_length() {
        let c = chain();
        let mut rng = StdRng::seed_from_u64(10);
        let user = c.sample_trajectory(50, &mut rng);
        let chaffs = ImStrategy.generate(&c, &user, 5, &mut rng).unwrap();
        assert_eq!(chaffs.len(), 5);
        for chaff in &chaffs {
            assert_eq!(chaff.len(), 50);
        }
        // With overwhelming probability the samples differ from each other.
        assert_ne!(chaffs[0], chaffs[1]);
    }

    #[test]
    fn chaff_statistics_match_the_chain() {
        // The fraction of slots a long IM chaff spends in cell 0 should
        // approach the stationary mass of cell 0.
        let c = chain();
        let mut rng = StdRng::seed_from_u64(11);
        let user = c.sample_trajectory(20_000, &mut rng);
        let chaff = &ImStrategy.generate(&c, &user, 1, &mut rng).unwrap()[0];
        let occ = chaff.occupancy(2);
        let pi0 = c.initial().prob(CellId::new(0));
        assert!((occ[0] - pi0).abs() < 0.02, "occ = {}, pi = {pi0}", occ[0]);
    }

    #[test]
    fn controller_replay_matches_interface() {
        let c = chain();
        let mut rng = StdRng::seed_from_u64(12);
        let mut controller = ImController::new(&c);
        let mut prev: Option<CellId> = None;
        for _ in 0..30 {
            let cell = controller.next(CellId::new(0), &[], &mut rng);
            if let Some(p) = prev {
                // Every move must follow the chain's support.
                assert!(c.matrix().prob(p, cell) > 0.0);
            }
            prev = Some(cell);
        }
    }

    #[test]
    fn rejects_empty_user() {
        let c = chain();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ImStrategy
            .generate(&c, &Trajectory::new(), 1, &mut rng)
            .is_err());
    }
}

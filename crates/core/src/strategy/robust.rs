//! Randomized robust strategies (RML/ROO/RMO, Sec. VI-B): avoid-set
//! perturbations that survive a strategy-aware eavesdropper.

use super::{validate_user, ChaffStrategy, MoController};
use crate::strategy::oo::optimal_offline_trajectory;
use crate::trellis::{most_likely_trajectory, AvoidSet};
use crate::{CoreError, Result};
use chaff_markov::{CellId, MarkovChain, Trajectory};
use rand::{Rng, RngCore};

/// How many times the robust offline strategies re-draw their random
/// avoid-set when the previous draw made the problem infeasible.
const MAX_AVOID_RETRIES: usize = 8;

/// The robust ML (RML) strategy (Sec. VI-B1).
///
/// The plain ML strategy is deterministic, so an advanced eavesdropper that
/// knows it can compute the chaff's trajectory and simply ignore it
/// (Sec. VI-A2). RML randomizes: for each chaff `u` it draws an avoid-set
/// `X_u` containing, for every earlier trajectory (the user and chaffs
/// `< u`), one random (cell, slot) pair sampled from that trajectory, then
/// routes the chaff along the most likely trajectory that avoids `X_u` —
/// a constrained shortest path over the trellis with vertices removed.
///
/// Each chaff's trajectory is therefore (i) still near-maximal in
/// likelihood, (ii) distinct from all earlier ones with high probability,
/// and (iii) unpredictable to the eavesdropper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RmlStrategy;

impl ChaffStrategy for RmlStrategy {
    fn name(&self) -> &'static str {
        "RML"
    }

    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>> {
        validate_user(chain, user)?;
        generate_with_avoid_sets(chain, user, num_chaffs, rng, |chain, _user, avoid| {
            most_likely_trajectory(chain, _user.len(), Some(avoid)).map(|p| p.trajectory)
        })
    }

    fn deterministic_map(&self, chain: &MarkovChain, observed: &Trajectory) -> Option<Trajectory> {
        // The advanced eavesdropper knows the strategy class but not its
        // randomness; its best deterministic predictor is the base ML map.
        super::MlStrategy.deterministic_map(chain, observed)
    }
}

/// The robust OO (ROO) strategy (Sec. VI-B2).
///
/// Randomizes [`OoStrategy`](super::OoStrategy) the same way RML
/// randomizes ML: per-chaff random avoid-sets, then Algorithm 1's dynamic
/// program over the reduced trellis (layers `L'_t = L_t \ X_u`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RooStrategy;

impl ChaffStrategy for RooStrategy {
    fn name(&self) -> &'static str {
        "ROO"
    }

    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>> {
        validate_user(chain, user)?;
        generate_with_avoid_sets(chain, user, num_chaffs, rng, |chain, user, avoid| {
            optimal_offline_trajectory(chain, user, Some(avoid))
        })
    }

    fn deterministic_map(&self, chain: &MarkovChain, observed: &Trajectory) -> Option<Trajectory> {
        super::OoStrategy.deterministic_map(chain, observed)
    }
}

/// Shared RML/ROO scaffolding: draw avoid-sets per chaff, solve the
/// constrained problem, retry on infeasibility.
///
/// In addition to the paper's pairs (one per earlier trajectory), every
/// chaff avoids one random (cell, slot) pair **of the unperturbed base
/// solution itself** (`base`, the strategy's deterministic map of the
/// user). The paper's pairs are drawn from trajectories the base solution
/// is already engineered to avoid, so on sparse trace-like models they
/// frequently fail to bind, leaving the chaff identical to the map the
/// advanced eavesdropper blacklists; the self-avoidance pair is binding
/// by construction and guarantees the output differs from that map.
fn generate_with_avoid_sets(
    chain: &MarkovChain,
    user: &Trajectory,
    num_chaffs: usize,
    rng: &mut dyn RngCore,
    solve: impl Fn(&MarkovChain, &Trajectory, &AvoidSet) -> Result<Trajectory>,
) -> Result<Vec<Trajectory>> {
    let horizon = user.len();
    // The unperturbed solution the eavesdropper can predict.
    let base = solve(chain, user, &AvoidSet::new(horizon, chain.num_states())).ok();
    let mut produced: Vec<Trajectory> = Vec::with_capacity(num_chaffs);
    for _ in 0..num_chaffs {
        let mut result = None;
        for _attempt in 0..MAX_AVOID_RETRIES {
            let mut avoid = AvoidSet::new(horizon, chain.num_states());
            // One random (cell, slot) pair from the user and from every
            // chaff generated so far (the paper's Sec. VI-B construction).
            let slot = rng.random_range(0..horizon);
            avoid.insert(slot, user.cell(slot));
            for earlier in &produced {
                let slot = rng.random_range(0..horizon);
                avoid.insert(slot, earlier.cell(slot));
            }
            // The guaranteed-binding self-avoidance pair.
            if let Some(base) = &base {
                let slot = rng.random_range(0..horizon);
                avoid.insert(slot, base.cell(slot));
            }
            match solve(chain, user, &avoid) {
                Ok(trajectory) => {
                    result = Some(trajectory);
                    break;
                }
                Err(CoreError::NoFeasiblePath) => continue,
                Err(e) => return Err(e),
            }
        }
        produced.push(result.ok_or(CoreError::NoFeasiblePath)?);
    }
    Ok(produced)
}

/// The robust MO (RMO) strategy (Sec. VI-B3).
///
/// Keeps MO's online property: instead of cell-slot avoid pairs it draws,
/// for each chaff `u` and each earlier trajectory `u' < u`, one random slot
/// `t_{u'}`; at that slot chaff `u` must avoid wherever trajectory `u'`
/// currently is. Chaffs are resolved in index order within each slot, so
/// "wherever `u'` is" is always already known.
///
/// As with RML/ROO, each chaff additionally avoids the *unperturbed MO
/// trajectory* at one random slot (computable online: the base MO
/// controller is simulated alongside), guaranteeing the output differs
/// from the map the advanced eavesdropper predicts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RmoStrategy;

impl ChaffStrategy for RmoStrategy {
    fn name(&self) -> &'static str {
        "RMO"
    }

    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>> {
        validate_user(chain, user)?;
        let horizon = user.len();
        // avoid_slots[k][u'] = the slot at which chaff k avoids trajectory
        // u' (u' = 0 is the user, u' >= 1 is chaff u'-1).
        let avoid_slots: Vec<Vec<usize>> = (0..num_chaffs)
            .map(|k| (0..=k).map(|_| rng.random_range(0..horizon)).collect())
            .collect();
        // self_slots[k]: the slot at which chaff k dodges the base MO map.
        let self_slots: Vec<usize> = (0..num_chaffs)
            .map(|_| rng.random_range(0..horizon))
            .collect();
        let mut base_controller = MoController::new(chain);
        let mut controllers: Vec<MoController<'_>> =
            (0..num_chaffs).map(|_| MoController::new(chain)).collect();
        let mut chaffs: Vec<Trajectory> = (0..num_chaffs)
            .map(|_| Trajectory::with_capacity(horizon))
            .collect();
        for t in 0..horizon {
            let user_now = user.cell(t);
            let base_cell = base_controller.decide(user_now, &[]);
            for k in 0..num_chaffs {
                let mut avoid: Vec<CellId> = Vec::new();
                for (u_prime, &slot) in avoid_slots[k].iter().enumerate() {
                    if slot == t {
                        let loc = if u_prime == 0 {
                            user_now
                        } else {
                            chaffs[u_prime - 1].cell(t)
                        };
                        avoid.push(loc);
                    }
                }
                if self_slots[k] == t {
                    avoid.push(base_cell);
                }
                let cell = controllers[k].decide(user_now, &avoid);
                chaffs[k].push(cell);
            }
        }
        Ok(chaffs)
    }

    fn deterministic_map(&self, chain: &MarkovChain, observed: &Trajectory) -> Option<Trajectory> {
        super::MoStrategy.deterministic_map(chain, observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::MlDetector;
    use chaff_markov::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(seed: u64) -> MarkovChain {
        let mut rng = StdRng::seed_from_u64(seed);
        MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap()
    }

    #[test]
    fn rml_chaffs_are_distinct_and_high_likelihood() {
        let c = chain(61);
        let mut rng = StdRng::seed_from_u64(62);
        let user = c.sample_trajectory(50, &mut rng);
        let chaffs = RmlStrategy.generate(&c, &user, 5, &mut rng).unwrap();
        assert_eq!(chaffs.len(), 5);
        let ml = most_likely_trajectory(&c, 50, None).unwrap();
        for chaff in &chaffs {
            // Avoiding a handful of vertices costs little likelihood.
            assert!(c.log_likelihood(chaff) > -ml.cost - 10.0);
        }
        // With a 10-cell space and random avoid pairs, duplicates among 5
        // chaffs are unlikely but not impossible; at least two variants
        // must exist (otherwise the randomization failed entirely).
        let distinct: std::collections::HashSet<_> = chaffs.iter().collect();
        assert!(distinct.len() >= 2);
    }

    #[test]
    fn rml_differs_from_plain_ml() {
        let c = chain(63);
        let mut rng = StdRng::seed_from_u64(64);
        let user = c.sample_trajectory(40, &mut rng);
        let plain = most_likely_trajectory(&c, 40, None).unwrap().trajectory;
        let robust = &RmlStrategy.generate(&c, &user, 1, &mut rng).unwrap()[0];
        // The avoid pair against the plain ML path forces at least one slot
        // to differ whenever the drawn pair lies on that path; across a
        // trajectory-length draw this is overwhelmingly likely to trigger
        // when user and ML path overlap — but the guaranteed property is
        // just that the result is a valid high-likelihood trajectory.
        assert_eq!(robust.len(), plain.len());
    }

    #[test]
    fn roo_chaffs_satisfy_a_near_oo_objective() {
        let c = chain(65);
        let mut rng = StdRng::seed_from_u64(66);
        let user = c.sample_trajectory(60, &mut rng);
        let oo = &super::super::OoStrategy
            .generate(&c, &user, 1, &mut rng)
            .unwrap()[0];
        let roo = &RooStrategy.generate(&c, &user, 3, &mut rng).unwrap()[0];
        // The perturbed objective cannot beat the unconstrained optimum...
        assert!(user.coincidences(roo) + 2 >= user.coincidences(oo));
        // ...but stays close: on model (a) both should be near-disjoint.
        assert!(user.coincidences(roo) <= 3);
    }

    #[test]
    fn roo_still_beats_the_detector() {
        let c = chain(67);
        let mut rng = StdRng::seed_from_u64(68);
        let mut chaff_wins = 0;
        for _ in 0..20 {
            let user = c.sample_trajectory(40, &mut rng);
            let chaffs = RooStrategy.generate(&c, &user, 2, &mut rng).unwrap();
            let mut observed = vec![user];
            observed.extend(chaffs);
            let d = MlDetector.detect(&c, &observed).unwrap();
            if d.tie_set().iter().any(|&u| u != 0) {
                chaff_wins += 1;
            }
        }
        // Avoiding one random vertex rarely destroys the likelihood win.
        assert!(chaff_wins >= 17, "chaff wins = {chaff_wins}/20");
    }

    #[test]
    fn rmo_randomization_separates_multiple_chaffs() {
        // Plain MO gives every chaff the identical trajectory. RMO chaff
        // u must avoid chaff u' < u at a random slot; since un-perturbed
        // chaffs coincide everywhere, that avoidance is guaranteed to
        // force a difference at the drawn slot.
        let c = chain(69);
        let mut rng = StdRng::seed_from_u64(70);
        let mut separated = 0;
        let runs = 20;
        for _ in 0..runs {
            let user = c.sample_trajectory(30, &mut rng);
            let chaffs = RmoStrategy.generate(&c, &user, 3, &mut rng).unwrap();
            let distinct: std::collections::HashSet<_> = chaffs.iter().collect();
            if distinct.len() >= 2 {
                separated += 1;
            }
        }
        assert!(separated >= runs - 2, "separated = {separated}/{runs}");
    }

    #[test]
    fn rmo_produces_independent_chaffs() {
        let c = chain(71);
        let mut rng = StdRng::seed_from_u64(72);
        let user = c.sample_trajectory(40, &mut rng);
        let chaffs = RmoStrategy.generate(&c, &user, 4, &mut rng).unwrap();
        assert_eq!(chaffs.len(), 4);
        for chaff in &chaffs {
            assert_eq!(chaff.len(), 40);
        }
    }

    #[test]
    fn robust_maps_equal_base_maps() {
        let c = chain(73);
        let mut rng = StdRng::seed_from_u64(74);
        let user = c.sample_trajectory(20, &mut rng);
        assert_eq!(
            RmlStrategy.deterministic_map(&c, &user),
            super::super::MlStrategy.deterministic_map(&c, &user)
        );
        assert_eq!(
            RooStrategy.deterministic_map(&c, &user),
            super::super::OoStrategy.deterministic_map(&c, &user)
        );
        assert_eq!(
            RmoStrategy.deterministic_map(&c, &user),
            super::super::MoStrategy.deterministic_map(&c, &user)
        );
    }
}

//! The optimal offline (OO) chaff strategy — Algorithm 1 (Sec. IV-C).

use super::{validate_user, ChaffStrategy};
use crate::trellis::AvoidSet;
use crate::{loglik_cmp, CoreError, Result};
use chaff_markov::{CellId, MarkovChain, Trajectory};
use rand::RngCore;
use std::cmp::Ordering;

/// The optimal offline (OO) strategy — Algorithm 1 (Sec. IV-C).
///
/// Minimizes the number of slots where the chaff co-locates with the user
/// (eq. 4), subject to the chaff's likelihood strictly exceeding the
/// user's (eq. 5) so that the ML detector is guaranteed to pick the chaff.
/// When the user's own trajectory is already a most likely one the strict
/// constraint is infeasible; the paper then relaxes it to equality, forcing
/// the detector into a coin flip while still minimizing co-location.
///
/// Solved by dynamic programming over the trellis of Fig. 2 with an extra
/// "remaining co-locations" coordinate: `K_t(x, i)` is the cheapest
/// completion from cell `x` at slot `t` that co-locates with the user at
/// most `i` more times. The paper quotes `O(T²L²)`; this implementation
/// iterates sparse row supports, giving `O(T² · nnz)` — the difference
/// between intractable and sub-second on the 959-cell trace model.
///
/// OO needs the user's *entire* trajectory in advance (offline); see
/// [`MoStrategy`](super::MoStrategy) for the online counterpart.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OoStrategy;

impl ChaffStrategy for OoStrategy {
    fn name(&self) -> &'static str {
        "OO"
    }

    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>> {
        let _ = rng; // deterministic
        validate_user(chain, user)?;
        let chaff = optimal_offline_trajectory(chain, user, None)?;
        Ok(vec![chaff; num_chaffs])
    }

    fn deterministic_map(&self, chain: &MarkovChain, observed: &Trajectory) -> Option<Trajectory> {
        optimal_offline_trajectory(chain, observed, None).ok()
    }
}

/// Sentinel for "no next hop recorded".
const NO_HOP: u32 = u32::MAX;

/// Runs Algorithm 1, optionally with removed trellis vertices (the robust
/// ROO strategy of Sec. VI-B2 passes an [`AvoidSet`]).
///
/// Returns the chaff trajectory. Selection of the co-location budget `i*`:
///
/// 1. smallest `i` whose cost beats the user's path cost (constraint 5,
///    strict);
/// 2. otherwise, smallest `i` achieving the best feasible cost — which is
///    the paper's equality fallback when the graph is unconstrained, and
///    the natural generalization when an avoid-set blocks the optimum.
///
/// # Errors
///
/// Returns [`CoreError::NoFeasiblePath`] when the avoid-set disconnects
/// every layer, and validation errors for empty/out-of-range input.
pub(crate) fn optimal_offline_trajectory(
    chain: &MarkovChain,
    user: &Trajectory,
    avoid: Option<&AvoidSet>,
) -> Result<Trajectory> {
    validate_user(chain, user)?;
    let horizon = user.len();
    let l = chain.num_states();
    let blocked = |t: usize, c: CellId| avoid.is_some_and(|a| a.contains(t, c));
    // Number of meaningful co-location budgets at slot t: i in 0..=horizon-t.
    let width = |t: usize| horizon - t + 1;

    // cost[t][x * width(t) + i], hop[t][...]: cheapest completion and the
    // successor cell achieving it.
    let mut cost: Vec<Vec<f64>> = Vec::with_capacity(horizon);
    let mut hop: Vec<Vec<u32>> = Vec::with_capacity(horizon);
    for t in 0..horizon {
        cost.push(vec![f64::INFINITY; l * width(t)]);
        hop.push(vec![NO_HOP; l * width(t)]);
    }

    // Terminal layer t = horizon-1: zero remaining cost; i = 0 requires
    // x != user's final cell.
    {
        let t = horizon - 1;
        let w = width(t);
        let user_cell = user.cell(t);
        for x in 0..l {
            let cell = CellId::new(x);
            if blocked(t, cell) {
                continue;
            }
            for i in 0..w {
                if i == 0 && cell == user_cell {
                    continue; // infeasible: would co-locate once with budget 0
                }
                cost[t][x * w + i] = 0.0;
            }
        }
    }

    // Backward induction.
    for t in (0..horizon - 1).rev() {
        let w = width(t);
        let w_next = width(t + 1);
        let user_cell = user.cell(t);
        let (lower, upper) = cost.split_at_mut(t + 1);
        let cost_t = &mut lower[t];
        let cost_next = &upper[0];
        let hop_t = &mut hop[t];
        for x in 0..l {
            let cell = CellId::new(x);
            if blocked(t, cell) {
                continue;
            }
            let here = usize::from(cell == user_cell);
            for i in 0..w {
                let Some(j) = i.checked_sub(here) else {
                    continue; // i = 0 but we sit on the user: infeasible
                };
                let j = j.min(w_next - 1);
                let mut best = f64::INFINITY;
                let mut best_hop = NO_HOP;
                for (succ, p) in chain.matrix().successors(cell) {
                    let c_next = cost_next[succ.index() * w_next + j];
                    if !c_next.is_finite() {
                        continue;
                    }
                    let cand = c_next - p.ln();
                    if cand < best {
                        best = cand;
                        best_hop = succ.index() as u32;
                    }
                }
                cost_t[x * w + i] = best;
                hop_t[x * w + i] = best_hop;
            }
        }
    }

    // Virtual source layer: k0[i] and the start cell attaining it.
    let w0 = width(0);
    let mut k0 = vec![f64::INFINITY; w0];
    let mut start = vec![NO_HOP; w0];
    for x in 0..l {
        let cell = CellId::new(x);
        let lp = chain.initial().log_prob(cell);
        if !lp.is_finite() {
            continue;
        }
        for i in 0..w0 {
            let c = cost[0][x * w0 + i];
            if !c.is_finite() {
                continue;
            }
            let cand = c - lp;
            if cand < k0[i] {
                k0[i] = cand;
                start[i] = x as u32;
            }
        }
    }

    let user_cost = -chain.log_likelihood(user);
    // Step 1: strict win over the user's likelihood.
    let mut i_star = (0..w0).find(|&i| loglik_cmp(k0[i], user_cost) == Ordering::Less);
    // Step 2: equality fallback / best feasible cost under avoid-sets.
    if i_star.is_none() {
        let best_cost = k0.iter().copied().fold(f64::INFINITY, f64::min);
        if !best_cost.is_finite() {
            return Err(CoreError::NoFeasiblePath);
        }
        i_star = (0..w0).find(|&i| loglik_cmp(k0[i], best_cost) == Ordering::Equal);
    }
    let i_star = i_star.ok_or(CoreError::NoFeasiblePath)?;

    // Reconstruct the trajectory following the stored hops, decrementing
    // the budget whenever the chaff sits on the user. The slot index drives
    // three parallel per-slot tables, so a range loop is the clear form.
    let mut cells = Vec::with_capacity(horizon);
    let mut x = start[i_star] as usize;
    let mut budget = i_star;
    cells.push(CellId::new(x));
    #[allow(clippy::needless_range_loop)]
    for t in 0..horizon - 1 {
        let w = width(t);
        let w_next = width(t + 1);
        let next = hop[t][x * w + budget];
        debug_assert_ne!(next, NO_HOP, "finite-cost state must have a hop");
        if CellId::new(x) == user.cell(t) {
            budget -= 1;
        }
        budget = budget.min(w_next - 1);
        x = next as usize;
        cells.push(CellId::new(x));
    }
    Ok(Trajectory::from(cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::MlDetector;
    use chaff_markov::models::ModelKind;
    use chaff_markov::TransitionMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force oracle: enumerate every trajectory, apply the paper's
    /// selection rule directly.
    fn brute_force_oo(chain: &MarkovChain, user: &Trajectory) -> (usize, bool) {
        let l = chain.num_states();
        let horizon = user.len();
        let user_ll = chain.log_likelihood(user);
        let mut all: Vec<(Vec<usize>, f64)> = vec![(vec![], 0.0)];
        for t in 0..horizon {
            let mut next = Vec::new();
            for (path, ll) in &all {
                for x in 0..l {
                    let inc = if t == 0 {
                        chain.initial().log_prob(CellId::new(x))
                    } else {
                        chain
                            .matrix()
                            .log_prob(CellId::new(path[t - 1]), CellId::new(x))
                    };
                    if inc.is_finite() {
                        let mut p = path.clone();
                        p.push(x);
                        next.push((p, ll + inc));
                    }
                }
            }
            all = next;
        }
        let coincidences = |p: &[usize]| {
            p.iter()
                .zip(user.iter())
                .filter(|(a, b)| **a == b.index())
                .count()
        };
        // Strict winners first.
        let strict: Option<usize> = all
            .iter()
            .filter(|(_, ll)| loglik_cmp(*ll, user_ll) == Ordering::Greater)
            .map(|(p, _)| coincidences(p))
            .min();
        if let Some(c) = strict {
            return (c, true);
        }
        let best_ll = all
            .iter()
            .map(|(_, ll)| *ll)
            .fold(f64::NEG_INFINITY, f64::max);
        let tie: usize = all
            .iter()
            .filter(|(_, ll)| loglik_cmp(*ll, best_ll) == Ordering::Equal)
            .map(|(p, _)| coincidences(p))
            .min()
            .expect("at least the ML trajectory exists");
        (tie, false)
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..30 {
            let chain = MarkovChain::new(ModelKind::NonSkewed.build(4, &mut rng).unwrap()).unwrap();
            let user = chain.sample_trajectory(5, &mut rng);
            let chaff = optimal_offline_trajectory(&chain, &user, None).unwrap();
            let (oracle_coincidences, strict) = brute_force_oo(&chain, &user);
            assert_eq!(
                user.coincidences(&chaff),
                oracle_coincidences,
                "trial {trial}: user={user}, chaff={chaff}, strict={strict}"
            );
            // Constraint (5): the chaff must at least tie the user.
            assert!(
                loglik_cmp(chain.log_likelihood(&chaff), chain.log_likelihood(&user))
                    != Ordering::Less,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn detector_always_includes_the_chaff() {
        let mut rng = StdRng::seed_from_u64(42);
        for kind in ModelKind::ALL {
            let chain = MarkovChain::new(kind.build(10, &mut rng).unwrap()).unwrap();
            for _ in 0..10 {
                let user = chain.sample_trajectory(50, &mut rng);
                let chaff = OoStrategy.generate(&chain, &user, 1, &mut rng).unwrap();
                let mut observed = vec![user];
                observed.extend(chaff);
                let d = MlDetector.detect(&chain, &observed).unwrap();
                assert!(d.tie_set().contains(&1), "{kind}");
            }
        }
    }

    #[test]
    fn random_user_rarely_meets_the_chaff() {
        // For the high-entropy model (a) the OO chaff should co-locate in
        // almost no slot (Fig. 5a shows accuracy near zero).
        let mut rng = StdRng::seed_from_u64(43);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap();
        let mut total = 0usize;
        for _ in 0..20 {
            let user = chain.sample_trajectory(100, &mut rng);
            let chaff = optimal_offline_trajectory(&chain, &user, None).unwrap();
            total += user.coincidences(&chaff);
        }
        assert!(total <= 20, "total coincidences = {total}");
    }

    #[test]
    fn equality_fallback_when_user_rides_the_ml_path() {
        // Craft a chain with a unique dominant path and put the user on it;
        // the strict constraint (5) is then infeasible and OO must fall
        // back to an equal-likelihood trajectory.
        let m = TransitionMatrix::from_rows(vec![
            vec![0.98, 0.01, 0.01],
            vec![0.49, 0.50, 0.01],
            vec![0.49, 0.01, 0.50],
        ])
        .unwrap();
        let chain = MarkovChain::new(m).unwrap();
        let ml = crate::trellis::most_likely_trajectory(&chain, 6, None).unwrap();
        let user = ml.trajectory;
        let chaff = optimal_offline_trajectory(&chain, &user, None).unwrap();
        assert_eq!(
            loglik_cmp(chain.log_likelihood(&chaff), chain.log_likelihood(&user)),
            Ordering::Equal
        );
    }

    #[test]
    fn avoid_set_is_respected() {
        let mut rng = StdRng::seed_from_u64(44);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(6, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(12, &mut rng);
        let base = optimal_offline_trajectory(&chain, &user, None).unwrap();
        let mut avoid = AvoidSet::new(12, 6);
        avoid.insert(4, base.cell(4));
        let perturbed = optimal_offline_trajectory(&chain, &user, Some(&avoid)).unwrap();
        assert_ne!(perturbed.cell(4), base.cell(4));
    }

    #[test]
    fn fully_blocked_instance_errors() {
        let mut rng = StdRng::seed_from_u64(45);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(3, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(4, &mut rng);
        let mut avoid = AvoidSet::new(4, 3);
        for x in 0..3 {
            avoid.insert(1, CellId::new(x));
        }
        assert!(matches!(
            optimal_offline_trajectory(&chain, &user, Some(&avoid)),
            Err(CoreError::NoFeasiblePath)
        ));
    }

    #[test]
    fn single_slot_horizon() {
        let mut rng = StdRng::seed_from_u64(46);
        let chain =
            MarkovChain::new(ModelKind::SpatiallySkewed.build(8, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(1, &mut rng);
        let chaff = optimal_offline_trajectory(&chain, &user, None).unwrap();
        assert_eq!(chaff.len(), 1);
        // With one slot, the chaff either beats the user's initial mass
        // from a different cell or ties it.
        assert!(
            loglik_cmp(chain.log_likelihood(&chaff), chain.log_likelihood(&user)) != Ordering::Less
        );
    }
}

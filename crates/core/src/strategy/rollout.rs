//! Sampling-based rollout strategy (extension): one-step lookahead over
//! sampled user futures.

use super::{validate_user, ChaffStrategy};
use crate::{loglik_cmp, Result};
use chaff_markov::{CellId, MarkovChain, Trajectory};
use rand::RngCore;
use std::cmp::Ordering;

/// Default number of sampled user futures per decision.
pub const DEFAULT_ROLLOUT_SAMPLES: usize = 16;

/// Sampling-based one-step-lookahead online strategy (extension).
///
/// Sec. IV-D casts online chaff control as a finite-horizon MDP and the
/// paper evaluates only the myopic policy (MO, Algorithm 2), noting that
/// "any efficient MDP solver (e.g., rollout algorithm) is applicable".
/// This strategy is that suggested next step: at each slot it scores every
/// candidate chaff move by its immediate MDP cost *plus* the expected cost
/// one slot ahead, estimated by sampling user next-steps from the mobility
/// model and assuming the myopic response afterwards.
///
/// The per-slot MDP cost is the paper's
/// `C(γ_t, x_{1,t}, x_{2,t}) = 1{co-located} + 1{not}(1{γ>0} + ½·1{γ=0})`.
///
/// Compared in the ablation benches against MO; it trades
/// `O(s² · samples)` work per slot for fewer forced co-locations on
/// likelihood-dominated instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutStrategy {
    /// Number of user futures sampled per candidate evaluation.
    pub samples: usize,
}

impl Default for RolloutStrategy {
    fn default() -> Self {
        RolloutStrategy {
            samples: DEFAULT_ROLLOUT_SAMPLES,
        }
    }
}

impl ChaffStrategy for RolloutStrategy {
    fn name(&self) -> &'static str {
        "ROLLOUT"
    }

    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>> {
        validate_user(chain, user)?;
        Ok((0..num_chaffs)
            .map(|_| self.run_once(chain, user, rng))
            .collect())
    }
}

impl RolloutStrategy {
    fn run_once(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        rng: &mut dyn RngCore,
    ) -> Trajectory {
        let mut out = Trajectory::with_capacity(user.len());
        let mut gamma = 0.0f64;
        let mut prev_chaff: Option<CellId> = None;
        let mut prev_user: Option<CellId> = None;
        for t in 0..user.len() {
            let user_now = user.cell(t);
            let user_inc = match prev_user {
                None => chain.initial().log_prob(user_now),
                Some(pu) => chain.matrix().log_prob(pu, user_now),
            };
            let candidates: Vec<(CellId, f64)> = match prev_chaff {
                None => (0..chain.num_states())
                    .map(CellId::new)
                    .map(|c| (c, chain.initial().log_prob(c)))
                    .filter(|(_, lp)| lp.is_finite())
                    .collect(),
                Some(pc) => chain
                    .matrix()
                    .successors(pc)
                    .map(|(c, p)| (c, p.ln()))
                    .collect(),
            };
            let mut best: Option<(CellId, f64)> = None;
            for &(cand, chaff_inc) in &candidates {
                let next_gamma = gamma + user_inc - chaff_inc;
                let immediate = mdp_cost(next_gamma, user_now, cand);
                let future = self.expected_future_cost(chain, cand, user_now, next_gamma, rng);
                let score = immediate + future;
                match best {
                    Some((_, bs)) if bs <= score => {}
                    _ => best = Some((cand, score)),
                }
            }
            let choice = best.map(|(c, _)| c).unwrap_or(user_now);
            let chaff_inc = match prev_chaff {
                None => chain.initial().log_prob(choice),
                Some(pc) => chain.matrix().log_prob(pc, choice),
            };
            gamma += user_inc - chaff_inc;
            prev_chaff = Some(choice);
            prev_user = Some(user_now);
            out.push(choice);
        }
        out
    }

    /// Expected next-slot cost if the chaff sits at `chaff_now` with gap
    /// `gamma`, sampling the user's next move and assuming a myopic chaff
    /// response.
    fn expected_future_cost(
        &self,
        chain: &MarkovChain,
        chaff_now: CellId,
        user_now: CellId,
        gamma: f64,
        rng: &mut dyn RngCore,
    ) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for _ in 0..self.samples {
            let user_next = chain.step(user_now, rng);
            let user_inc = chain.matrix().log_prob(user_now, user_next);
            // Myopic response: best over chaff successors.
            let mut best = f64::INFINITY;
            for (succ, p) in chain.matrix().successors(chaff_now) {
                let g = gamma + user_inc - p.ln();
                let c = mdp_cost(g, user_next, succ);
                if c < best {
                    best = c;
                }
            }
            if best.is_finite() {
                total += best;
            } else {
                total += 1.0; // no move: certain tracking
            }
        }
        total / self.samples as f64
    }
}

/// The paper's per-slot MDP cost `C(γ_t, x_{1,t}, x_{2,t})` (Sec. IV-D):
/// the eavesdropper's per-slot tracking probability under the two-trajectory
/// ML race.
fn mdp_cost(gamma: f64, user: CellId, chaff: CellId) -> f64 {
    if chaff == user {
        1.0
    } else {
        match loglik_cmp(gamma, 0.0) {
            Ordering::Greater => 1.0,
            Ordering::Equal => 0.5,
            Ordering::Less => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mdp_cost_matches_paper_definition() {
        let a = CellId::new(0);
        let b = CellId::new(1);
        assert_eq!(mdp_cost(-5.0, a, a), 1.0); // co-located: tracked
        assert_eq!(mdp_cost(1.0, a, b), 1.0); // user more likely: tracked
        assert_eq!(mdp_cost(0.0, a, b), 0.5); // tie: coin flip
        assert_eq!(mdp_cost(-1.0, a, b), 0.0); // chaff wins: safe
    }

    #[test]
    fn rollout_produces_valid_trajectories() {
        let mut rng = StdRng::seed_from_u64(81);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(8, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(25, &mut rng);
        let chaffs = RolloutStrategy::default()
            .generate(&chain, &user, 2, &mut rng)
            .unwrap();
        for chaff in &chaffs {
            assert_eq!(chaff.len(), 25);
            assert!(chain.log_likelihood(chaff).is_finite());
        }
    }

    #[test]
    fn rollout_accuracy_not_worse_than_random_on_easy_models() {
        // On the non-skewed model, the rollout chaff should win or tie the
        // likelihood race most of the time, like MO does.
        let mut rng = StdRng::seed_from_u64(82);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap();
        let strategy = RolloutStrategy { samples: 8 };
        let mut low_coincidence_runs = 0;
        for _ in 0..10 {
            let user = chain.sample_trajectory(60, &mut rng);
            let chaff = &strategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
            if user.coincidences(chaff) <= 6 {
                low_coincidence_runs += 1;
            }
        }
        assert!(low_coincidence_runs >= 8, "{low_coincidence_runs}/10");
    }

    #[test]
    fn zero_samples_degenerates_to_pure_myopia() {
        let mut rng = StdRng::seed_from_u64(83);
        let chain =
            MarkovChain::new(ModelKind::SpatiallySkewed.build(6, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(15, &mut rng);
        let strategy = RolloutStrategy { samples: 0 };
        let chaffs = strategy.generate(&chain, &user, 1, &mut rng).unwrap();
        assert_eq!(chaffs[0].len(), 15);
    }
}

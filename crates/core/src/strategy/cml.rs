//! The constrained maximum-likelihood (CML) chaff strategy (Sec. V-C1).

use super::{replay_controller, validate_user, ChaffStrategy, OnlineChaffController};
use crate::Result;
use chaff_markov::{CellId, MarkovChain, Trajectory};
use rand::RngCore;

/// The constrained maximum-likelihood (CML) strategy (Sec. V-C1).
///
/// Greedily maximizes the chaff's likelihood under the hard constraint of
/// never co-locating with the user: at each slot the chaff moves to its
/// most likely next cell *excluding the user's current cell*. CML is the
/// analyzable auxiliary strategy whose tracking accuracy upper-bounds the
/// OO strategy's (Theorem V.4) — and it is fully online.
///
/// When the exclusion leaves no admissible move (possible only on very
/// sparse empirical models), the controller falls back to the
/// unconstrained most likely cell, accepting one co-location; the paper's
/// models always have an admissible second choice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmlStrategy;

impl ChaffStrategy for CmlStrategy {
    fn name(&self) -> &'static str {
        "CML"
    }

    fn generate(
        &self,
        chain: &MarkovChain,
        user: &Trajectory,
        num_chaffs: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Trajectory>> {
        validate_user(chain, user)?;
        let mut controller = CmlController::new(chain);
        let chaff = replay_controller(&mut controller, user, rng);
        Ok(vec![chaff; num_chaffs])
    }

    fn deterministic_map(&self, chain: &MarkovChain, observed: &Trajectory) -> Option<Trajectory> {
        if observed.is_empty() {
            return None;
        }
        let mut controller = CmlController::new(chain);
        let mut rng = UnusedRng(0);
        Some(replay_controller(&mut controller, observed, &mut rng))
    }
}

/// Online form of [`CmlStrategy`]. On a time-varying model
/// ([`scheduled`](Self::scheduled)) the greedy walk stays continuous:
/// each move is the constrained argmax of the slot-active chain from
/// wherever the chaff was one slot ago.
#[derive(Debug, Clone)]
pub struct CmlController<'a> {
    chains: super::EpochChains<'a>,
    current: Option<CellId>,
}

impl<'a> CmlController<'a> {
    /// Creates a controller for one chaff over a stationary chain.
    pub fn new(chain: &'a MarkovChain) -> Self {
        Self::scheduled(super::EpochChains::stationary(chain))
    }

    /// Creates a controller stepping against epoch-active chains.
    pub fn scheduled(chains: super::EpochChains<'a>) -> Self {
        CmlController {
            chains,
            current: None,
        }
    }
}

impl OnlineChaffController for CmlController<'_> {
    fn next(&mut self, user_now: CellId, avoid: &[CellId], _rng: &mut dyn RngCore) -> CellId {
        let chain = self.chains.advance();
        let choice = match self.current {
            None => {
                // t = 1: most probable steady-state cell other than the
                // user's.
                let pi = chain.initial();
                let mut best: Option<(CellId, f64)> = None;
                for j in 0..pi.num_states() {
                    let cell = CellId::new(j);
                    if cell == user_now || avoid.contains(&cell) {
                        continue;
                    }
                    let p = pi.prob(cell);
                    match best {
                        Some((_, bp)) if bp >= p => {}
                        _ => best = Some((cell, p)),
                    }
                }
                best.map(|(c, _)| c).unwrap_or(user_now)
            }
            Some(prev) => pick_constrained_argmax(chain, prev, user_now, avoid),
        };
        self.current = Some(choice);
        choice
    }
}

/// Most likely successor of `prev` excluding the user's cell and the avoid
/// list; falls back to the unconstrained argmax (accepting co-location),
/// then to staying put, when exclusions leave nothing.
///
/// This is the paper's `f(x_{1,t}, x_{2,t-1})` (eq. 17); the theory module
/// reuses it to build the CML product chain.
pub(crate) fn pick_constrained_argmax(
    chain: &MarkovChain,
    prev: CellId,
    user_now: CellId,
    avoid: &[CellId],
) -> CellId {
    let mut best: Option<(CellId, f64)> = None;
    for (cell, p) in chain.matrix().successors(prev) {
        if cell == user_now || avoid.contains(&cell) {
            continue;
        }
        match best {
            Some((_, bp)) if bp >= p => {}
            _ => best = Some((cell, p)),
        }
    }
    if let Some((cell, _)) = best {
        return cell;
    }
    match chain.matrix().argmax_successor(prev, None) {
        Some((cell, _)) => cell,
        None => prev,
    }
}

/// An `RngCore` for replaying *deterministic* controllers through
/// interfaces that formally require randomness. The CML controller never
/// consults it; should a future controller draw from it anyway, it
/// yields a fixed SplitMix64 stream — the replay stays deterministic and
/// the process stays up (this used to be a trio of `unreachable!` panic
/// sites reachable through the public strategy API).
struct UnusedRng(u64);

impl RngCore for UnusedRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        // SplitMix64: the workspace's standard stream-derivation mixer.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::models::ModelKind;
    use chaff_markov::TransitionMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chaff_never_co_locates_on_dense_models() {
        let mut rng = StdRng::seed_from_u64(31);
        for kind in ModelKind::ALL {
            let chain = MarkovChain::new(kind.build(10, &mut rng).unwrap()).unwrap();
            for _ in 0..10 {
                let user = chain.sample_trajectory(60, &mut rng);
                let chaff = &CmlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
                assert_eq!(user.coincidences(chaff), 0, "{kind}");
            }
        }
    }

    #[test]
    fn chaff_moves_are_greedy_argmax() {
        let mut rng = StdRng::seed_from_u64(32);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(8, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(30, &mut rng);
        let chaff = &CmlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        for t in 1..30 {
            let prev = chaff.cell(t - 1);
            let expected = chain
                .matrix()
                .argmax_successor(prev, Some(user.cell(t)))
                .unwrap()
                .0;
            assert_eq!(chaff.cell(t), expected, "slot {t}");
        }
    }

    #[test]
    fn first_slot_picks_best_non_user_cell() {
        let mut rng = StdRng::seed_from_u64(33);
        let chain =
            MarkovChain::new(ModelKind::SpatiallySkewed.build(10, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(5, &mut rng);
        let chaff = &CmlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        let expected = chain.initial().argmax(Some(user.cell(0)));
        assert_eq!(chaff.cell(0), expected);
    }

    #[test]
    fn forced_co_location_falls_back_gracefully() {
        // From cell 0 the only possible move is to cell 1; if the user is
        // at cell 1 the chaff has no admissible move and co-locates.
        let m = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.5, 0.5]]).unwrap();
        let chain = MarkovChain::new(m).unwrap();
        let mut controller = CmlController::new(&chain);
        let mut rng = StdRng::seed_from_u64(1);
        // t=1: user at 1 -> chaff takes cell 0 (only other cell).
        let c1 = controller.next(CellId::new(1), &[], &mut rng);
        assert_eq!(c1, CellId::new(0));
        // t=2: from 0 the chaff can only reach 1, but the user sits there.
        let c2 = controller.next(CellId::new(1), &[], &mut rng);
        assert_eq!(c2, CellId::new(1));
    }

    #[test]
    fn deterministic_map_matches_generate() {
        let mut rng = StdRng::seed_from_u64(34);
        let chain =
            MarkovChain::new(ModelKind::TemporallySkewed.build(10, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(25, &mut rng);
        let by_map = CmlStrategy.deterministic_map(&chain, &user).unwrap();
        let by_generate = CmlStrategy.generate(&chain, &user, 1, &mut rng).unwrap();
        assert_eq!(by_map, by_generate[0]);
    }
}

//! Error type shared by detectors, strategies and theory evaluators.

use std::error::Error;
use std::fmt;

/// Errors produced by detectors, strategies and theory evaluators.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The user trajectory supplied to an offline strategy was empty.
    EmptyTrajectory,
    /// The set of observed trajectories was empty.
    NoTrajectories,
    /// Observed trajectories have different lengths.
    LengthMismatch {
        /// Length of the first trajectory.
        expected: usize,
        /// Length of the mismatched trajectory.
        found: usize,
    },
    /// A trajectory visits a cell outside the model's state space.
    CellOutOfRange {
        /// Offending cell index.
        cell: usize,
        /// Number of states in the model.
        states: usize,
    },
    /// The observed population exceeds the batched detectors' `u32`
    /// service-index space. Service indices are stored as `u32` in the
    /// compact candidate trackers; populations beyond `u32::MAX` would
    /// silently truncate, so they are rejected up front instead.
    PopulationTooLarge {
        /// Number of observed trajectories supplied.
        population: usize,
        /// Largest supported population.
        max: usize,
    },
    /// The trellis has no feasible path (all candidate moves have zero
    /// probability, e.g. because an avoid-set removed every successor).
    NoFeasiblePath,
    /// A paged observation source
    /// ([`SlotRowSource`](crate::detector::SlotRowSource)) failed while
    /// producing a slot row — an I/O fault, a checksum mismatch, or a
    /// row count that disagrees with the source's declared horizon. The
    /// reason is carried as text so backend error types (which are
    /// rarely `Clone + PartialEq`) can cross this boundary.
    RowSource {
        /// Slot index at which the source failed (rows emitted so far).
        slot: usize,
        /// Human-readable description of the underlying fault.
        reason: String,
    },
    /// An error bubbled up from the Markov substrate.
    Markov(chaff_markov::MarkovError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyTrajectory => write!(f, "user trajectory is empty"),
            CoreError::NoTrajectories => write!(f, "no observed trajectories"),
            CoreError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "trajectory length {found} differs from expected {expected}"
                )
            }
            CoreError::CellOutOfRange { cell, states } => {
                write!(f, "cell {cell} out of range for {states} states")
            }
            CoreError::PopulationTooLarge { population, max } => {
                write!(
                    f,
                    "population of {population} trajectories exceeds the supported maximum {max}"
                )
            }
            CoreError::NoFeasiblePath => write!(f, "no feasible chaff trajectory exists"),
            CoreError::RowSource { slot, reason } => {
                write!(f, "observation source failed at slot {slot}: {reason}")
            }
            CoreError::Markov(e) => write!(f, "markov substrate error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<chaff_markov::MarkovError> for CoreError {
    fn from(e: chaff_markov::MarkovError) -> Self {
        CoreError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_errors_convert() {
        let err: CoreError = chaff_markov::MarkovError::Empty.into();
        assert!(matches!(err, CoreError::Markov(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn row_source_errors_name_the_slot_and_reason() {
        let err = CoreError::RowSource {
            slot: 17,
            reason: "page 3 checksum mismatch".to_string(),
        };
        assert!(err.to_string().contains("slot 17"));
        assert!(err.to_string().contains("page 3"));
        assert!(err.source().is_none());
    }

    #[test]
    fn display_is_meaningful() {
        let err = CoreError::LengthMismatch {
            expected: 10,
            found: 7,
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains("10"));
    }
}

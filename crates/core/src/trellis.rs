//! The auxiliary trellis graph of Fig. 2 and shortest-path solvers.
//!
//! The paper converts the maximum-likelihood trajectory search (eq. 2) into
//! a shortest-path problem: layer `t` holds one vertex per cell, the edge
//! from the virtual source into `(x, 1)` costs `-log π(x)`, the edge from
//! `(x, t-1)` to `(x', t)` costs `-log P(x' | x)`, and edges into the
//! virtual sink are free. A path's cost is the negative log-likelihood of
//! the corresponding trajectory, so the shortest path is the most likely
//! trajectory.
//!
//! Because the trellis is a layered DAG, the shortest path is computable by
//! a forward dynamic program in `O(T · nnz)`; a textbook Dijkstra
//! implementation (the solver the paper names) is also provided and the two
//! are cross-checked in tests. Both support *avoid-sets* — (cell, slot)
//! pairs whose vertex is removed — which is exactly the perturbation the
//! robust RML/ROO strategies apply (Sec. VI-B).

use crate::{CoreError, Result};
use chaff_markov::{CellId, MarkovChain, Trajectory};
use std::collections::BinaryHeap;

/// A set of (slot, cell) pairs that a trajectory must avoid.
///
/// Slot indices are 0-based. Used by the robust strategies: removing the
/// vertex for cell `l` at slot `t` forces the shortest path around it.
///
/// # Example
///
/// ```
/// use chaff_core::trellis::AvoidSet;
/// use chaff_markov::CellId;
///
/// let mut avoid = AvoidSet::new(5, 10);
/// avoid.insert(3, CellId::new(7));
/// assert!(avoid.contains(3, CellId::new(7)));
/// assert!(!avoid.contains(2, CellId::new(7)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AvoidSet {
    /// `mask[t * num_cells + cell]` — true when the vertex is removed.
    mask: Vec<bool>,
    num_cells: usize,
    horizon: usize,
}

impl AvoidSet {
    /// Creates an empty avoid-set for `horizon` slots over `num_cells` cells.
    pub fn new(horizon: usize, num_cells: usize) -> Self {
        AvoidSet {
            mask: vec![false; horizon * num_cells],
            num_cells,
            horizon,
        }
    }

    /// Marks `cell` as forbidden at `slot` (0-based). Out-of-range slots are
    /// ignored.
    pub fn insert(&mut self, slot: usize, cell: CellId) {
        if slot < self.horizon && cell.index() < self.num_cells {
            self.mask[slot * self.num_cells + cell.index()] = true;
        }
    }

    /// Whether `cell` is forbidden at `slot`.
    #[inline]
    pub fn contains(&self, slot: usize, cell: CellId) -> bool {
        slot < self.horizon
            && cell.index() < self.num_cells
            && self.mask[slot * self.num_cells + cell.index()]
    }

    /// Number of slots covered.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of forbidden (slot, cell) pairs.
    pub fn len(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Whether no pair is forbidden.
    pub fn is_empty(&self) -> bool {
        !self.mask.iter().any(|&b| b)
    }
}

/// Result of a trellis shortest-path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPath {
    /// The minimizing trajectory.
    pub trajectory: Trajectory,
    /// Its path cost, i.e. its negative log-likelihood.
    pub cost: f64,
}

/// Computes the most likely trajectory of length `horizon` (the solution of
/// eq. 2) by forward dynamic programming over the trellis.
///
/// `avoid` removes vertices; pass `None` for the unconstrained problem.
/// Ties break towards the lowest cell index at every layer, making the
/// result deterministic (the advanced-eavesdropper analysis assumes the
/// tie-breaker is known).
///
/// # Errors
///
/// Returns [`CoreError::NoFeasiblePath`] when every path is blocked (all
/// remaining moves have zero probability), and
/// [`CoreError::EmptyTrajectory`] when `horizon == 0`.
pub fn most_likely_trajectory(
    chain: &MarkovChain,
    horizon: usize,
    avoid: Option<&AvoidSet>,
) -> Result<ShortestPath> {
    if horizon == 0 {
        return Err(CoreError::EmptyTrajectory);
    }
    let l = chain.num_states();
    let blocked = |t: usize, c: CellId| avoid.is_some_and(|a| a.contains(t, c));

    // dist[x] = cost of the cheapest path reaching cell x at the current
    // layer; prev[t][x] = predecessor cell index at layer t-1.
    let mut dist = vec![f64::INFINITY; l];
    let mut prev: Vec<Vec<u32>> = Vec::with_capacity(horizon);
    prev.push(vec![u32::MAX; l]); // layer 0 has no predecessor
    #[allow(clippy::needless_range_loop)]
    for x in 0..l {
        let cell = CellId::new(x);
        if !blocked(0, cell) {
            let lp = chain.initial().log_prob(cell);
            if lp.is_finite() {
                dist[x] = -lp;
            }
        }
    }
    let mut next = vec![f64::INFINITY; l];
    for t in 1..horizon {
        next.fill(f64::INFINITY);
        let mut layer_prev = vec![u32::MAX; l];
        for (x, &d) in dist.iter().enumerate() {
            if !d.is_finite() {
                continue;
            }
            for (succ, p) in chain.matrix().successors(CellId::new(x)) {
                if blocked(t, succ) {
                    continue;
                }
                let cand = d - p.ln();
                let j = succ.index();
                if cand < next[j] {
                    next[j] = cand;
                    layer_prev[j] = x as u32;
                }
            }
        }
        std::mem::swap(&mut dist, &mut next);
        prev.push(layer_prev);
    }

    // Pick the cheapest terminal vertex (ties to the lowest index).
    let (best_cell, best_cost) = dist
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_finite())
        .min_by(|(i1, d1), (i2, d2)| d1.partial_cmp(d2).unwrap().then(i1.cmp(i2)))
        .map(|(i, &d)| (i, d))
        .ok_or(CoreError::NoFeasiblePath)?;

    // Reconstruct backwards.
    let mut cells = vec![CellId::new(best_cell)];
    let mut cursor = best_cell as u32;
    for t in (1..horizon).rev() {
        cursor = prev[t][cursor as usize];
        debug_assert_ne!(
            cursor,
            u32::MAX,
            "finite-cost vertex must have a predecessor"
        );
        cells.push(CellId::new(cursor as usize));
    }
    cells.reverse();
    Ok(ShortestPath {
        trajectory: Trajectory::from(cells),
        cost: best_cost,
    })
}

/// Heap entry for [`most_likely_trajectory_dijkstra`]: min-heap by cost.
#[derive(PartialEq)]
struct HeapNode {
    cost: f64,
    slot: usize,
    cell: usize,
}

impl Eq for HeapNode {}

impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse cost ordering for a min-heap; break ties by slot then cell
        // to keep the pop order deterministic. Costs are -log
        // probabilities, never NaN, so total_cmp agrees with the partial
        // order while staying panic-free.
        other
            .cost
            .total_cmp(&self.cost)
            .then(other.slot.cmp(&self.slot))
            .then(other.cell.cmp(&self.cell))
    }
}

/// Computes the most likely trajectory with Dijkstra's algorithm — the
/// solver the paper names for eq. (3).
///
/// All edge costs (`-log` probabilities) are non-negative, so Dijkstra
/// applies. The layered DP in [`most_likely_trajectory`] is asymptotically
/// faster on this DAG; this implementation exists for fidelity to the paper
/// and as an independent cross-check (the two are compared in tests and in
/// a Criterion ablation bench).
///
/// # Errors
///
/// Same conditions as [`most_likely_trajectory`].
pub fn most_likely_trajectory_dijkstra(
    chain: &MarkovChain,
    horizon: usize,
    avoid: Option<&AvoidSet>,
) -> Result<ShortestPath> {
    if horizon == 0 {
        return Err(CoreError::EmptyTrajectory);
    }
    let l = chain.num_states();
    let blocked = |t: usize, c: CellId| avoid.is_some_and(|a| a.contains(t, c));
    let idx = |t: usize, x: usize| t * l + x;

    let mut dist = vec![f64::INFINITY; horizon * l];
    let mut prev = vec![u32::MAX; horizon * l];
    let mut settled = vec![false; horizon * l];
    let mut heap = BinaryHeap::new();

    for x in 0..l {
        let cell = CellId::new(x);
        if blocked(0, cell) {
            continue;
        }
        let lp = chain.initial().log_prob(cell);
        if lp.is_finite() {
            dist[idx(0, x)] = -lp;
            heap.push(HeapNode {
                cost: -lp,
                slot: 0,
                cell: x,
            });
        }
    }

    let mut best_terminal: Option<(usize, f64)> = None;
    while let Some(HeapNode { cost, slot, cell }) = heap.pop() {
        let node = idx(slot, cell);
        if settled[node] {
            continue;
        }
        settled[node] = true;
        if slot == horizon - 1 {
            // First settled terminal vertex is optimal; keep scanning is
            // unnecessary because Dijkstra settles in cost order.
            best_terminal = Some((cell, cost));
            break;
        }
        for (succ, p) in chain.matrix().successors(CellId::new(cell)) {
            if blocked(slot + 1, succ) {
                continue;
            }
            let next_node = idx(slot + 1, succ.index());
            let cand = cost - p.ln();
            if cand < dist[next_node] {
                dist[next_node] = cand;
                prev[next_node] = node as u32;
                heap.push(HeapNode {
                    cost: cand,
                    slot: slot + 1,
                    cell: succ.index(),
                });
            }
        }
    }

    let (terminal_cell, cost) = best_terminal.ok_or(CoreError::NoFeasiblePath)?;
    let mut cells = Vec::with_capacity(horizon);
    let mut cursor = idx(horizon - 1, terminal_cell);
    loop {
        cells.push(CellId::new(cursor % l));
        let p = prev[cursor];
        if p == u32::MAX {
            break;
        }
        cursor = p as usize;
    }
    cells.reverse();
    debug_assert_eq!(cells.len(), horizon);
    Ok(ShortestPath {
        trajectory: Trajectory::from(cells),
        cost,
    })
}

/// Negative log-likelihood ("path cost", the paper's `K(p_x)`) of a
/// trajectory under `chain`; `+inf` if any step is impossible.
pub fn path_cost(chain: &MarkovChain, trajectory: &Trajectory) -> f64 {
    -chain.log_likelihood(trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::{models::ModelKind, StateDistribution, TransitionMatrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_chain() -> MarkovChain {
        // State 0 is "sticky" and has the highest stationary mass.
        let m = TransitionMatrix::from_rows(vec![
            vec![0.8, 0.1, 0.1],
            vec![0.5, 0.3, 0.2],
            vec![0.4, 0.3, 0.3],
        ])
        .unwrap();
        MarkovChain::new(m).unwrap()
    }

    /// Enumerates all trajectories to find the true ML one (test oracle).
    fn brute_force_ml(chain: &MarkovChain, horizon: usize) -> (Trajectory, f64) {
        let l = chain.num_states();
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut stack = vec![(Vec::<usize>::new(), 0.0f64)];
        while let Some((path, cost)) = stack.pop() {
            if path.len() == horizon {
                match &best {
                    Some((_, bc)) if *bc <= cost => {}
                    _ => best = Some((path, cost)),
                }
                continue;
            }
            for x in 0..l {
                let inc = if path.is_empty() {
                    -chain.initial().log_prob(CellId::new(x))
                } else {
                    -chain
                        .matrix()
                        .log_prob(CellId::new(*path.last().unwrap()), CellId::new(x))
                };
                if inc.is_finite() {
                    let mut p = path.clone();
                    p.push(x);
                    stack.push((p, cost + inc));
                }
            }
        }
        let (path, cost) = best.expect("feasible");
        (Trajectory::from_indices(path), cost)
    }

    #[test]
    fn dp_matches_brute_force() {
        let chain = toy_chain();
        for horizon in 1..=6 {
            let dp = most_likely_trajectory(&chain, horizon, None).unwrap();
            let (_, brute_cost) = brute_force_ml(&chain, horizon);
            assert!(
                (dp.cost - brute_cost).abs() < 1e-9,
                "horizon {horizon}: {} vs {}",
                dp.cost,
                brute_cost
            );
        }
    }

    #[test]
    fn dp_and_dijkstra_agree() {
        let mut rng = StdRng::seed_from_u64(17);
        for kind in ModelKind::ALL {
            let chain = MarkovChain::new(kind.build(8, &mut rng).unwrap()).unwrap();
            for horizon in [1, 2, 5, 20] {
                let dp = most_likely_trajectory(&chain, horizon, None).unwrap();
                let dj = most_likely_trajectory_dijkstra(&chain, horizon, None).unwrap();
                assert!((dp.cost - dj.cost).abs() < 1e-9, "{kind} horizon {horizon}");
            }
        }
    }

    #[test]
    fn cost_equals_negative_log_likelihood() {
        let chain = toy_chain();
        let sp = most_likely_trajectory(&chain, 10, None).unwrap();
        assert!((sp.cost - path_cost(&chain, &sp.trajectory)).abs() < 1e-9);
    }

    #[test]
    fn ml_trajectory_dominates_samples() {
        let chain = toy_chain();
        let sp = most_likely_trajectory(&chain, 15, None).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let x = chain.sample_trajectory(15, &mut rng);
            assert!(chain.log_likelihood(&x) <= -sp.cost + 1e-9);
        }
    }

    #[test]
    fn sticky_chain_ml_path_stays_in_sticky_cell() {
        let chain = toy_chain();
        let sp = most_likely_trajectory(&chain, 8, None).unwrap();
        for cell in sp.trajectory.iter() {
            assert_eq!(cell, CellId::new(0));
        }
    }

    #[test]
    fn avoid_set_forces_detour() {
        let chain = toy_chain();
        let unconstrained = most_likely_trajectory(&chain, 6, None).unwrap();
        let mut avoid = AvoidSet::new(6, 3);
        avoid.insert(3, CellId::new(0));
        let constrained = most_likely_trajectory(&chain, 6, Some(&avoid)).unwrap();
        assert_ne!(constrained.trajectory.cell(3), CellId::new(0));
        assert!(constrained.cost >= unconstrained.cost);
        // Dijkstra agrees under the same avoid-set.
        let dj = most_likely_trajectory_dijkstra(&chain, 6, Some(&avoid)).unwrap();
        assert!((dj.cost - constrained.cost).abs() < 1e-9);
    }

    #[test]
    fn fully_blocked_layer_is_infeasible() {
        let chain = toy_chain();
        let mut avoid = AvoidSet::new(4, 3);
        for x in 0..3 {
            avoid.insert(2, CellId::new(x));
        }
        assert!(matches!(
            most_likely_trajectory(&chain, 4, Some(&avoid)),
            Err(CoreError::NoFeasiblePath)
        ));
        assert!(matches!(
            most_likely_trajectory_dijkstra(&chain, 4, Some(&avoid)),
            Err(CoreError::NoFeasiblePath)
        ));
    }

    #[test]
    fn zero_horizon_is_an_error() {
        let chain = toy_chain();
        assert!(matches!(
            most_likely_trajectory(&chain, 0, None),
            Err(CoreError::EmptyTrajectory)
        ));
    }

    #[test]
    fn zero_probability_transitions_are_never_used() {
        let m = TransitionMatrix::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        let chain = MarkovChain::with_initial(m, StateDistribution::uniform(3).unwrap()).unwrap();
        let sp = most_likely_trajectory(&chain, 7, None).unwrap();
        // The only feasible paths follow the cycle, so consecutive cells
        // must differ by +1 mod 3.
        for w in sp.trajectory.as_slice().windows(2) {
            assert_eq!((w[0].index() + 1) % 3, w[1].index());
        }
    }

    #[test]
    fn avoid_set_accessors() {
        let mut a = AvoidSet::new(3, 4);
        assert!(a.is_empty());
        a.insert(1, CellId::new(2));
        a.insert(99, CellId::new(0)); // silently ignored: out of horizon
        assert_eq!(a.len(), 1);
        assert_eq!(a.horizon(), 3);
        assert!(!a.contains(99, CellId::new(0)));
    }
}

//! Chaff-based location privacy for mobile edge clouds.
//!
//! This crate implements the primary contribution of *Location Privacy in
//! Mobile Edge Clouds: A Chaff-based Approach* (He, Ciftcioglu, Wang,
//! Chan; ICDCS'17 / arXiv:1709.03133): an eavesdropper who observes service
//! migrations between MECs can track a mobile user, and the user defends by
//! launching *chaff* services whose migrations are controlled to confuse
//! the eavesdropper.
//!
//! # The two sides
//!
//! **Eavesdropper** ([`detector`]): given `N` observed service trajectories,
//! pick the user's. The basic eavesdropper runs maximum-likelihood
//! detection under the user's mobility model (eq. 1). The *advanced*
//! eavesdropper additionally knows the user's chaff-control strategy and
//! filters out trajectories the strategy would have produced (Sec. VI-A).
//!
//! **User** ([`strategy`]): control the chaffs' mobility. Implemented
//! strategies, in the paper's order:
//!
//! | Strategy | Kind | Idea |
//! |---|---|---|
//! | [`strategy::ImStrategy`] | randomized | chaffs move like i.i.d. copies of the user |
//! | [`strategy::MlStrategy`] | deterministic, offline | globally most-likely trajectory (trellis shortest path, Fig. 2) |
//! | [`strategy::CmlStrategy`] | deterministic, online | greedy most-likely move that never co-locates (Sec. V-C) |
//! | [`strategy::OoStrategy`] | deterministic, offline | minimize co-location subject to winning the likelihood race (Algorithm 1) |
//! | [`strategy::MoStrategy`] | deterministic, online | myopic per-slot cost minimization (Algorithm 2) |
//! | [`strategy::RmlStrategy`], [`strategy::RooStrategy`], [`strategy::RmoStrategy`] | randomized | avoid-set perturbations robust to strategy-aware eavesdroppers (Sec. VI-B) |
//!
//! [`theory`] evaluates the paper's closed forms and concentration bounds
//! (eq. 11, Theorems V.4/V.5, Corollary V.6) so simulations can be checked
//! against analysis.
//!
//! # Example
//!
//! ```
//! use chaff_core::detector::MlDetector;
//! use chaff_core::metrics::tracking_accuracy_series;
//! use chaff_core::strategy::{ChaffStrategy, OoStrategy};
//! use chaff_markov::{models::ModelKind, MarkovChain};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(42);
//! let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?;
//! let user = chain.sample_trajectory(60, &mut rng);
//!
//! // One optimally-controlled chaff...
//! let chaffs = OoStrategy.generate(&chain, &user, 1, &mut rng)?;
//!
//! // ...versus a maximum-likelihood eavesdropper.
//! let mut observed = vec![user.clone()];
//! observed.extend(chaffs);
//! let detections = MlDetector.detect_prefixes(&chain, &observed)?;
//! let accuracy = tracking_accuracy_series(&observed, 0, &detections);
//! let time_avg = accuracy.iter().sum::<f64>() / accuracy.len() as f64;
//! assert!(time_avg < 0.5, "the chaff should defeat most tracking");
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
// The PR-8 detection shims stay one release for downstream callers, but
// no call site inside the crate may regress onto them.
#![deny(deprecated)]
#![warn(missing_docs)]

mod error;

pub mod detector;
pub mod likelihood;
pub mod metrics;
pub mod pool;
pub mod strategy;
pub mod theory;
pub mod trellis;

pub use error::CoreError;

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Absolute tolerance used when comparing accumulated log-likelihoods.
///
/// Path costs are sums of up to `T` logarithms computed in different
/// association orders by different algorithms; two mathematically equal
/// costs can drift apart by a few ulps per term. All likelihood-race
/// comparisons in this crate (detector ties, constraint (5) of the OO
/// strategy, the MO acceptance test) treat values within this tolerance as
/// equal.
pub const LOG_LIKELIHOOD_TOLERANCE: f64 = 1e-9;

/// Compares accumulated log-likelihood values with tolerance.
///
/// Returns `Ordering::Equal` when the values are within
/// [`LOG_LIKELIHOOD_TOLERANCE`]; infinities compare exactly.
pub fn loglik_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    if a == b || (a - b).abs() <= LOG_LIKELIHOOD_TOLERANCE {
        Ordering::Equal
    } else if a < b {
        Ordering::Less
    } else {
        Ordering::Greater
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn loglik_cmp_tolerates_drift() {
        assert_eq!(loglik_cmp(1.0, 1.0 + 1e-12), Ordering::Equal);
        assert_eq!(loglik_cmp(1.0, 1.1), Ordering::Less);
        assert_eq!(loglik_cmp(1.1, 1.0), Ordering::Greater);
    }

    #[test]
    fn loglik_cmp_handles_infinities() {
        assert_eq!(
            loglik_cmp(f64::NEG_INFINITY, f64::NEG_INFINITY),
            Ordering::Equal
        );
        assert_eq!(loglik_cmp(f64::NEG_INFINITY, 0.0), Ordering::Less);
        assert_eq!(loglik_cmp(0.0, f64::NEG_INFINITY), Ordering::Greater);
    }
}

//! Property-based tests for detectors and chaff strategies.

use chaff_core::detector::{AdvancedDetector, MlDetector};
use chaff_core::strategy::{
    ChaffStrategy, CmlStrategy, ImStrategy, MlStrategy, MoStrategy, OoStrategy, StrategyKind,
};
use chaff_core::{loglik_cmp, trellis};
use chaff_markov::{MarkovChain, Trajectory, TransitionMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;

/// A random ergodic chain of 3..=7 states with strictly positive entries.
fn arb_chain() -> impl Strategy<Value = MarkovChain> {
    (3usize..=7).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, n), n).prop_map(|rows| {
            MarkovChain::new(TransitionMatrix::from_weights(rows).expect("positive"))
                .expect("ergodic")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ml_strategy_attains_global_max_likelihood(
        chain in arb_chain(),
        seed in 0u64..500,
        horizon in 1usize..25,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(horizon, &mut rng);
        let chaff = &MlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        // No sampled trajectory may beat the ML chaff.
        for _ in 0..20 {
            let probe = chain.sample_trajectory(horizon, &mut rng);
            prop_assert!(chain.log_likelihood(&probe) <= chain.log_likelihood(chaff) + 1e-9);
        }
        prop_assert!(chain.log_likelihood(chaff) >= chain.log_likelihood(&user) - 1e-9);
    }

    #[test]
    fn oo_satisfies_constraint_and_beats_cml_coincidences(
        chain in arb_chain(),
        seed in 0u64..500,
        horizon in 2usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(horizon, &mut rng);
        let oo = &OoStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        // Constraint (5): chaff likelihood >= user's (equality fallback ok).
        prop_assert!(
            loglik_cmp(chain.log_likelihood(oo), chain.log_likelihood(&user))
                != Ordering::Less
        );
        // Optimality relative to the feasible CML trajectory: if CML's
        // trajectory wins the likelihood race, OO (optimal) must co-locate
        // no more than it.
        let cml = &CmlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        if loglik_cmp(chain.log_likelihood(cml), chain.log_likelihood(&user))
            == Ordering::Greater
        {
            prop_assert!(user.coincidences(oo) <= user.coincidences(cml));
        }
    }

    #[test]
    fn oo_never_beaten_by_ml_strategy_coincidences(
        chain in arb_chain(),
        seed in 0u64..500,
        horizon in 2usize..25,
    ) {
        // The ML trajectory is one feasible point of OO's program (it wins
        // or ties the race), so OO's objective value is at most its.
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(horizon, &mut rng);
        let oo = &OoStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        let ml = &MlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        if loglik_cmp(chain.log_likelihood(ml), chain.log_likelihood(&user))
            == Ordering::Greater
        {
            prop_assert!(user.coincidences(oo) <= user.coincidences(ml));
        }
    }

    #[test]
    fn detector_is_permutation_equivariant(
        chain in arb_chain(),
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Trajectory> =
            (0..4).map(|_| chain.sample_trajectory(12, &mut rng)).collect();
        let d = MlDetector.detect(&chain, &xs).unwrap();
        // Reverse the observation order; the winner must map accordingly.
        let reversed: Vec<Trajectory> = xs.iter().rev().cloned().collect();
        let d_rev = MlDetector.detect(&chain, &reversed).unwrap();
        let mapped: Vec<usize> =
            d_rev.tie_set().iter().map(|&i| xs.len() - 1 - i).rev().collect();
        prop_assert_eq!(d.tie_set(), &mapped[..]);
    }

    #[test]
    fn prefix_detection_consistent_with_direct_recomputation(
        chain in arb_chain(),
        seed in 0u64..500,
        horizon in 1usize..15,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Trajectory> =
            (0..3).map(|_| chain.sample_trajectory(horizon, &mut rng)).collect();
        let prefixes = MlDetector.detect_prefixes(&chain, &xs).unwrap();
        #[allow(clippy::needless_range_loop)]
        for t in 0..horizon {
            let truncated: Vec<Trajectory> = xs
                .iter()
                .map(|x| x.iter().take(t + 1).collect())
                .collect();
            let direct = MlDetector.detect(&chain, &truncated).unwrap();
            prop_assert_eq!(&prefixes[t], &direct, "slot {}", t);
        }
    }

    #[test]
    fn cml_never_co_locates_on_full_support_chains(
        chain in arb_chain(),
        seed in 0u64..500,
        horizon in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(horizon, &mut rng);
        let chaff = &CmlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        prop_assert_eq!(user.coincidences(chaff), 0);
    }

    #[test]
    fn mo_chaff_moves_follow_the_support(
        chain in arb_chain(),
        seed in 0u64..500,
        horizon in 2usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(horizon, &mut rng);
        let chaff = &MoStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        for t in 1..horizon {
            prop_assert!(chain.matrix().prob(chaff.cell(t - 1), chaff.cell(t)) > 0.0);
        }
    }

    #[test]
    fn advanced_detector_beats_every_deterministic_strategy(
        chain in arb_chain(),
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(20, &mut rng);
        for kind in StrategyKind::ALL.into_iter().filter(|k| k.is_deterministic()) {
            let strategy = kind.build();
            let chaffs = strategy.generate(&chain, &user, 2, &mut rng).unwrap();
            // Skip the measure-zero degenerate case where the user's own
            // trajectory coincides with the manufactured one.
            if chaffs.contains(&user) {
                continue;
            }
            let mut observed = vec![user.clone()];
            observed.extend(chaffs);
            let detector = AdvancedDetector::new(strategy.as_ref());
            let d = detector.detect(&chain, &observed).unwrap();
            prop_assert_eq!(d.tie_set(), &[0][..], "{}", kind);
        }
    }

    #[test]
    fn im_chaffs_are_valid_chain_samples(
        chain in arb_chain(),
        seed in 0u64..500,
        horizon in 1usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(horizon, &mut rng);
        for chaff in ImStrategy.generate(&chain, &user, 3, &mut rng).unwrap() {
            prop_assert!(chain.log_likelihood(&chaff).is_finite());
        }
    }

    #[test]
    fn trellis_cost_is_monotone_in_horizon(
        chain in arb_chain(),
        horizon in 2usize..25,
    ) {
        // Extending the horizon can only add non-negative edge costs.
        let shorter = trellis::most_likely_trajectory(&chain, horizon - 1, None).unwrap();
        let longer = trellis::most_likely_trajectory(&chain, horizon, None).unwrap();
        prop_assert!(longer.cost >= shorter.cost - 1e-9);
    }
}

// Batch/single detection equivalence: the fleet detection core must be a
// drop-in replacement for the per-trajectory path (same detections,
// bit-for-bit) and its sharding must be unobservable.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_detector_matches_single_path_exactly(
        chain in arb_chain(),
        seed in 0u64..1000,
        population in 1usize..60,
        horizon in 1usize..25,
        shards in 1usize..8,
    ) {
        use chaff_core::detector::BatchPrefixDetector;
        let mut rng = StdRng::seed_from_u64(seed);
        let observed: Vec<Trajectory> = (0..population)
            .map(|_| chain.sample_trajectory(horizon, &mut rng))
            .collect();
        let single = MlDetector.detect_prefixes(&chain, &observed).unwrap();
        let batch = BatchPrefixDetector::with_shards(shards)
            .detect_prefixes(chaff_core::detector::DetectInput::new(&chain, &observed))
            .unwrap();
        prop_assert_eq!(&batch, &single);
        // The full-trajectory decision coincides with the last prefix.
        let full = BatchPrefixDetector::with_shards(shards)
            .detect(&chain, &observed)
            .unwrap();
        prop_assert_eq!(&full, single.last().unwrap());
    }

    #[test]
    fn batch_detector_is_invariant_to_shard_count(
        chain in arb_chain(),
        seed in 0u64..1000,
        population in 2usize..50,
        horizon in 1usize..20,
    ) {
        use chaff_core::detector::BatchPrefixDetector;
        let mut rng = StdRng::seed_from_u64(seed);
        // Include duplicated trajectories so ties regularly straddle
        // shard boundaries.
        let mut observed: Vec<Trajectory> = (0..population)
            .map(|_| chain.sample_trajectory(horizon, &mut rng))
            .collect();
        let copy = observed[0].clone();
        observed.push(copy);
        let reference = BatchPrefixDetector::with_shards(1)
            .detect_prefixes(chaff_core::detector::DetectInput::new(&chain, &observed))
            .unwrap();
        for shards in [2usize, 3, 5, 16, 64] {
            let sharded = BatchPrefixDetector::with_shards(shards)
                .detect_prefixes(chaff_core::detector::DetectInput::new(&chain, &observed))
                .unwrap();
            prop_assert_eq!(&sharded, &reference, "shards = {}", shards);
        }
    }

    #[test]
    fn batch_detector_equivalence_survives_chaff_strategies(
        chain in arb_chain(),
        seed in 0u64..1000,
        horizon in 2usize..20,
    ) {
        use chaff_core::detector::BatchPrefixDetector;
        // Strategy-generated observation sets (not i.i.d. fleet draws)
        // exercise ties and -inf scores more aggressively.
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(horizon, &mut rng);
        let mut observed = vec![user.clone()];
        observed.extend(MlStrategy.generate(&chain, &user, 2, &mut rng).unwrap());
        observed.extend(ImStrategy.generate(&chain, &user, 2, &mut rng).unwrap());
        let single = MlDetector.detect_prefixes(&chain, &observed).unwrap();
        let batch = BatchPrefixDetector::with_shards(3)
            .detect_prefixes(chaff_core::detector::DetectInput::new(&chain, &observed))
            .unwrap();
        prop_assert_eq!(batch, single);
    }
}

//! Edge-case integration tests: sparse empirical-style chains, degenerate
//! horizons, and numerically extreme inputs.

use chaff_core::detector::{AdvancedDetector, MlDetector};
use chaff_core::strategy::{
    ChaffStrategy, CmlStrategy, ImStrategy, MlStrategy, MoStrategy, OoStrategy, RmlStrategy,
    RmoStrategy, RooStrategy, StrategyKind,
};
use chaff_core::theory::{LikelihoodConstants, TheoremV4Bound};
use chaff_core::trellis::{most_likely_trajectory, AvoidSet};
use chaff_markov::{CellId, MarkovChain, StateDistribution, Trajectory, TransitionMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A sparse chain shaped like an empirical trace estimate: a few corridors,
/// many zero transitions, one self-loop-heavy cell.
fn sparse_chain() -> MarkovChain {
    let rows = vec![
        //        0    1    2    3    4    5
        vec![0.8, 0.2, 0.0, 0.0, 0.0, 0.0],
        vec![0.5, 0.0, 0.5, 0.0, 0.0, 0.0],
        vec![0.0, 0.3, 0.0, 0.7, 0.0, 0.0],
        vec![0.0, 0.0, 0.2, 0.3, 0.5, 0.0],
        vec![0.0, 0.0, 0.0, 0.5, 0.0, 0.5],
        vec![0.0, 0.0, 0.0, 0.0, 0.6, 0.4],
    ];
    let matrix = TransitionMatrix::from_rows(rows).unwrap();
    MarkovChain::new(matrix).unwrap()
}

#[test]
fn all_strategies_work_on_sparse_chains() {
    let chain = sparse_chain();
    let mut rng = StdRng::seed_from_u64(1);
    let user = chain.sample_trajectory(40, &mut rng);
    for kind in StrategyKind::ALL {
        let strategy = kind.build();
        let chaffs = strategy.generate(&chain, &user, 2, &mut rng).unwrap();
        for chaff in &chaffs {
            assert_eq!(chaff.len(), 40, "{kind}");
            // Every chaff move must follow the sparse support (finite
            // likelihood) — the strategies never invent transitions.
            assert!(
                chain.log_likelihood(chaff).is_finite(),
                "{kind} produced an impossible trajectory"
            );
        }
    }
}

#[test]
fn oo_beats_user_likelihood_on_sparse_chains() {
    let chain = sparse_chain();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..20 {
        let user = chain.sample_trajectory(30, &mut rng);
        let chaff = &OoStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
        assert!(
            chain.log_likelihood(chaff) >= chain.log_likelihood(&user) - 1e-9,
            "user={user} chaff={chaff}"
        );
    }
}

#[test]
fn horizon_one_works_everywhere() {
    let chain = sparse_chain();
    let mut rng = StdRng::seed_from_u64(3);
    let user = chain.sample_trajectory(1, &mut rng);
    for kind in StrategyKind::ALL {
        let strategy = kind.build();
        let chaffs = strategy.generate(&chain, &user, 1, &mut rng).unwrap();
        assert_eq!(chaffs[0].len(), 1, "{kind}");
    }
    let mut observed = vec![user];
    observed.extend(
        MlStrategy
            .generate(&chain, &observed[0], 1, &mut rng)
            .unwrap(),
    );
    let d = MlDetector.detect(&chain, &observed).unwrap();
    assert!(!d.tie_set().is_empty());
    let detections = MlDetector.detect_prefixes(&chain, &observed).unwrap();
    assert_eq!(detections.len(), 1);
}

#[test]
fn single_observed_trajectory_is_always_detected() {
    let chain = sparse_chain();
    let mut rng = StdRng::seed_from_u64(4);
    let user = chain.sample_trajectory(10, &mut rng);
    let d = MlDetector
        .detect(&chain, std::slice::from_ref(&user))
        .unwrap();
    assert_eq!(d.tie_set(), &[0]);
    // The advanced detector may filter its only observation (the user's
    // trajectory can coincide with a strategy map); it must still guess.
    let detector = AdvancedDetector::new(&MoStrategy);
    let d = detector.detect(&chain, &[user]).unwrap();
    assert_eq!(d.tie_set(), &[0]);
}

#[test]
fn long_horizon_numerical_stability() {
    // 5000 slots of accumulated log-likelihoods must stay finite and the
    // detector deterministic.
    let chain = sparse_chain();
    let mut rng = StdRng::seed_from_u64(5);
    let user = chain.sample_trajectory(5_000, &mut rng);
    let chaff = &CmlStrategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
    assert!(chain.log_likelihood(&user).is_finite());
    assert!(chain.log_likelihood(chaff).is_finite());
    let mut observed = vec![user];
    observed.push(chaff.clone());
    let detections = MlDetector.detect_prefixes(&chain, &observed).unwrap();
    assert_eq!(detections.len(), 5_000);
}

#[test]
fn trellis_avoid_set_on_first_and_last_layers() {
    let chain = sparse_chain();
    let horizon = 8;
    let unconstrained = most_likely_trajectory(&chain, horizon, None).unwrap();
    let mut avoid = AvoidSet::new(horizon, chain.num_states());
    avoid.insert(0, unconstrained.trajectory.cell(0));
    avoid.insert(horizon - 1, unconstrained.trajectory.cell(horizon - 1));
    let constrained = most_likely_trajectory(&chain, horizon, Some(&avoid)).unwrap();
    assert_ne!(
        constrained.trajectory.cell(0),
        unconstrained.trajectory.cell(0)
    );
    assert_ne!(
        constrained.trajectory.cell(horizon - 1),
        unconstrained.trajectory.cell(horizon - 1)
    );
    assert!(constrained.cost >= unconstrained.cost - 1e-9);
}

#[test]
fn robust_strategies_generate_many_chaffs_on_sparse_chains() {
    let chain = sparse_chain();
    let mut rng = StdRng::seed_from_u64(6);
    let user = chain.sample_trajectory(25, &mut rng);
    for strategy in [
        &RmlStrategy as &dyn ChaffStrategy,
        &RooStrategy,
        &RmoStrategy,
    ] {
        let chaffs = strategy.generate(&chain, &user, 6, &mut rng).unwrap();
        assert_eq!(chaffs.len(), 6, "{}", strategy.name());
        for chaff in &chaffs {
            assert!(
                chain.log_likelihood(chaff).is_finite(),
                "{}",
                strategy.name()
            );
        }
    }
}

#[test]
fn single_successor_rows_make_cmax_infinite_and_bound_unavailable() {
    // A chain where one cell has exactly one successor: p2 = 0, so
    // c_max = log(p_max / p_2) = inf and Theorem V.4 cannot bind.
    let rows = vec![
        vec![0.0, 1.0, 0.0],
        vec![0.3, 0.3, 0.4],
        vec![0.5, 0.25, 0.25],
    ];
    let chain = MarkovChain::new(TransitionMatrix::from_rows(rows).unwrap()).unwrap();
    let constants = LikelihoodConstants::from_chain(&chain);
    assert_eq!(constants.cmax, f64::INFINITY);
    if let Ok(bound) = TheoremV4Bound::compute(&chain, 0.01, 5_000) {
        assert_eq!(bound.evaluate(10_000), None);
    }
}

#[test]
fn im_strategy_on_point_mass_initial_distribution() {
    // Degenerate initial distribution: everyone starts in cell 0.
    let matrix = TransitionMatrix::from_rows(vec![
        vec![0.5, 0.5, 0.0],
        vec![0.0, 0.5, 0.5],
        vec![0.5, 0.0, 0.5],
    ])
    .unwrap();
    let initial = StateDistribution::point_mass(3, CellId::new(0)).unwrap();
    let chain = MarkovChain::with_initial(matrix, initial).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let user = chain.sample_trajectory(20, &mut rng);
    assert_eq!(user.cell(0), CellId::new(0));
    let chaffs = ImStrategy.generate(&chain, &user, 3, &mut rng).unwrap();
    for chaff in &chaffs {
        assert_eq!(chaff.cell(0), CellId::new(0));
        assert!(chain.log_likelihood(chaff).is_finite());
    }
}

#[test]
fn detectors_agree_on_duplicated_observations() {
    // Duplicated trajectories (deterministic strategies fill their budget
    // with copies) must land in one tie set together.
    let chain = sparse_chain();
    let mut rng = StdRng::seed_from_u64(8);
    let user = chain.sample_trajectory(15, &mut rng);
    let chaffs = MlStrategy.generate(&chain, &user, 3, &mut rng).unwrap();
    let mut observed = vec![user];
    observed.extend(chaffs);
    let d = MlDetector.detect(&chain, &observed).unwrap();
    // All three identical ML chaffs tie (the user loses or joins the tie).
    assert!(d.tie_set().ends_with(&[1, 2, 3]));
}

#[test]
fn mo_controller_handles_user_teleporting() {
    // The "user" input can be adversarial (e.g. from a lazy migration
    // policy): a jump with zero model probability must not panic or
    // poison γ with NaN.
    let chain = sparse_chain();
    let mut controller = chaff_core::strategy::MoController::new(&chain);
    // Cells 0 -> 5 is impossible under the sparse chain.
    let a = controller.decide(CellId::new(0), &[]);
    let b = controller.decide(CellId::new(5), &[]);
    assert!(a.index() < 6 && b.index() < 6);
    assert!(!controller.gamma().is_nan());
}

#[test]
fn empirical_style_trajectory_detection_roundtrip() {
    // Build an empirical-like scenario end to end inside chaff-core: a
    // "pool" of sampled users where one is protected by each strategy.
    let chain = sparse_chain();
    let mut rng = StdRng::seed_from_u64(9);
    let pool: Vec<Trajectory> = (0..8)
        .map(|_| chain.sample_trajectory(30, &mut rng))
        .collect();
    for kind in [StrategyKind::Oo, StrategyKind::Mo, StrategyKind::Rml] {
        let strategy = kind.build();
        let chaffs = strategy.generate(&chain, &pool[0], 2, &mut rng).unwrap();
        let mut observed = pool.clone();
        observed.extend(chaffs);
        let detections = MlDetector.detect_prefixes(&chain, &observed).unwrap();
        let series = chaff_core::metrics::tracking_accuracy_series(&observed, 0, &detections);
        assert_eq!(series.len(), 30);
        assert!(series.iter().all(|&a| (0.0..=1.0).contains(&a)), "{kind}");
    }
}

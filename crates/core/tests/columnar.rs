//! Representation-equivalence battery (ISSUE 5, extended by ISSUE 8).
//!
//! Detection must be a pure function of the observations, never of
//! their representation: the unified
//! `BatchPrefixDetector::detect_prefixes` entry over per-trajectory,
//! columnar ([`CellGrid`]) and paged ([`GridRowSource`]) observations
//! must produce *bit-for-bit* identical detections, for every shard
//! count — property-tested over random chains, populations and horizons
//! across shards {1, 2, 7}, and pinned deterministically at `N = 10⁴`.
//! The memory contract (4 bytes per cell, `O(users)` offsets) is
//! asserted alongside.

use chaff_core::detector::{BatchPrefixDetector, DetectInput, GridRowSource};
use chaff_markov::{CellGrid, CellId, MarkovChain, Trajectory, TransitionMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random ergodic chain of 3..=7 states with strictly positive entries.
fn arb_chain() -> impl Strategy<Value = MarkovChain> {
    (3usize..=7).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, n), n).prop_map(|rows| {
            MarkovChain::new(TransitionMatrix::from_weights(rows).expect("positive"))
                .expect("ergodic")
        })
    })
}

/// A second chain over the same state space, for mixture detection.
fn two_chains() -> impl Strategy<Value = (MarkovChain, MarkovChain)> {
    (3usize..=6).prop_flat_map(|n| {
        let rows = || proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, n), n);
        (rows(), rows()).prop_map(|(a, b)| {
            (
                MarkovChain::new(TransitionMatrix::from_weights(a).expect("positive"))
                    .expect("ergodic"),
                MarkovChain::new(TransitionMatrix::from_weights(b).expect("positive"))
                    .expect("ergodic"),
            )
        })
    })
}

fn sample_population(chain: &MarkovChain, n: usize, horizon: usize, seed: u64) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| chain.sample_trajectory(horizon, &mut rng))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_table_representations_are_bit_for_bit(
        chain in arb_chain(),
        seed in 0u64..1_000,
        n in 1usize..120,
        horizon in 1usize..20,
    ) {
        let observed = sample_population(&chain, n, horizon, seed);
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let table = chain.log_likelihood_table();
        let reference = BatchPrefixDetector::with_shards(1)
            .detect_prefixes(DetectInput::new(&table, &observed))
            .unwrap();
        for shards in [1usize, 2, 7] {
            let detector = BatchPrefixDetector::with_shards(shards);
            let legacy = detector
                .detect_prefixes(DetectInput::new(&table, &observed))
                .unwrap();
            let columnar = detector
                .detect_prefixes(DetectInput::new(&table, &grid))
                .unwrap();
            let mut source = GridRowSource::new(&grid);
            let paged = detector
                .detect_prefixes(DetectInput::new(&table, &mut source))
                .unwrap();
            prop_assert_eq!(&legacy, &reference, "legacy shards = {}", shards);
            prop_assert_eq!(&columnar, &reference, "columnar shards = {}", shards);
            prop_assert_eq!(&paged, &reference, "paged shards = {}", shards);
        }
    }

    #[test]
    fn mixture_representations_are_bit_for_bit(
        chains in two_chains(),
        seed in 0u64..1_000,
        n in 2usize..80,
        horizon in 1usize..16,
    ) {
        let (a, b) = chains;
        // Half the population moves by each class.
        let mut observed = sample_population(&a, n / 2 + 1, horizon, seed);
        observed.extend(sample_population(&b, n / 2, horizon, seed ^ 0xB));
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let (ta, tb) = (a.log_likelihood_table(), b.log_likelihood_table());
        let reference = BatchPrefixDetector::with_shards(1)
            .detect_prefixes(DetectInput::new(&[&ta, &tb], &observed))
            .unwrap();
        for shards in [1usize, 2, 7] {
            let detector = BatchPrefixDetector::with_shards(shards);
            let legacy = detector
                .detect_prefixes(DetectInput::new(&[&ta, &tb], &observed))
                .unwrap();
            let columnar = detector
                .detect_prefixes(DetectInput::new(&[&ta, &tb], &grid))
                .unwrap();
            let mut source = GridRowSource::new(&grid);
            let paged = detector
                .detect_prefixes(DetectInput::new(&[&ta, &tb], &mut source))
                .unwrap();
            prop_assert_eq!(&legacy, &reference, "legacy shards = {}", shards);
            prop_assert_eq!(&columnar, &reference, "columnar shards = {}", shards);
            prop_assert_eq!(&paged, &reference, "paged shards = {}", shards);
        }
    }

    #[test]
    fn grid_round_trip_preserves_trajectories(
        chain in arb_chain(),
        seed in 0u64..1_000,
        n in 1usize..60,
        horizon in 1usize..24,
    ) {
        let observed = sample_population(&chain, n, horizon, seed);
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        prop_assert_eq!(grid.to_trajectories(), observed);
        prop_assert_eq!(grid.cell_bytes(), n * horizon * std::mem::size_of::<CellId>());
    }
}

/// The deterministic `N = 10⁴` rung of the satellite contract: every
/// observation representation agrees bit-for-bit across shards {1, 2, 7}
/// at the previous fleet ceiling.
#[test]
fn ten_thousand_trajectories_agree_across_layouts_and_shards() {
    let mut rng = StdRng::seed_from_u64(1709);
    let chain = MarkovChain::new(
        chaff_markov::models::ModelKind::NonSkewed
            .build(10, &mut rng)
            .unwrap(),
    )
    .unwrap();
    let observed = sample_population(&chain, 10_000, 15, 42);
    let grid = CellGrid::from_trajectories(&observed).unwrap();
    let table = chain.log_likelihood_table();
    let reference = BatchPrefixDetector::with_shards(1)
        .detect_prefixes(DetectInput::new(&table, &observed))
        .unwrap();
    for shards in [1usize, 2, 7] {
        let detector = BatchPrefixDetector::with_shards(shards);
        assert_eq!(
            detector
                .detect_prefixes(DetectInput::new(&table, &observed))
                .unwrap(),
            reference,
            "legacy shards = {shards}"
        );
        assert_eq!(
            detector
                .detect_prefixes(DetectInput::new(&table, &grid))
                .unwrap(),
            reference,
            "columnar shards = {shards}"
        );
        assert_eq!(
            detector
                .detect_prefixes(DetectInput::new(&[&table], &grid))
                .unwrap(),
            reference,
            "columnar mixture dispatch, shards = {shards}"
        );
        let mut source = GridRowSource::new(&grid);
        assert_eq!(
            detector
                .detect_prefixes(DetectInput::new(&table, &mut source))
                .unwrap(),
            reference,
            "paged shards = {shards}"
        );
    }
    // Memory contract at the same scale: 4 bytes per cell, nothing per
    // trajectory.
    assert_eq!(grid.cell_bytes(), 10_000 * 15 * 4);
}

//! Property battery holding the vectorized detection kernels to their
//! bit-for-bit contract against the legacy scalar implementations.
//!
//! The chunked kernels (`row_max`, `lane_max_into`, `collect_ties`,
//! `advance_slot_single`, `advance_slot_mixture`) must be *exactly* the
//! scalar left-to-right scans they replaced — same accumulator bits, same
//! exact maxima, same tie sets — for every width (lane multiples, the
//! scalar remainder tail, and everything in between), for tie-dense rows
//! where half the fleet sits inside the tolerance band, and for NaN-free
//! score sets stressed with subnormals and infinities. The legacy
//! reference is [`kernel::fold`] plus per-trajectory
//! [`LogLikelihoodTable::step`] walks, recomputed here from first
//! principles.

use chaff_core::detector::kernel::{
    self, advance_slot_mixture, advance_slot_single, collect_ties, fold, lane_max_into, row_max,
    LANE_WIDTH,
};
use chaff_core::{loglik_cmp, LOG_LIKELIHOOD_TOLERANCE};
use chaff_markov::{CellId, LogLikelihoodTable, MarkovChain, TransitionMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One non-NaN score: ordinary negative log-likelihood magnitudes, values
/// packed inside the tolerance band (tie-dense), subnormals of both
/// signs, and the `-inf` of an impossible transition.
fn arb_score() -> impl Strategy<Value = f64> {
    (0u8..10, -50.0f64..0.0, 0u64..=200).prop_map(|(sel, x, bits)| match sel {
        0..=3 => x,
        // Dense cluster inside/around the tolerance band of -1.0.
        4 | 5 => -1.0 + (bits as f64 - 100.0) * (LOG_LIKELIHOOD_TOLERANCE / 50.0),
        6 | 7 => f64::from_bits(bits + 1), // positive subnormals
        8 => -f64::from_bits(bits + 1),    // negative subnormals
        _ => f64::NEG_INFINITY,
    })
}

/// Widths straddling the lane boundary: empty, sub-lane, exact multiples
/// and multiples-plus-remainder.
fn arb_width() -> impl Strategy<Value = usize> {
    (0u8..4, 1usize..=4, 1usize..LANE_WIDTH).prop_map(|(sel, k, r)| match sel {
        0 => 0,
        1 => r,
        2 => k * LANE_WIDTH,
        _ => k * LANE_WIDTH + r,
    })
}

fn arb_scores() -> impl Strategy<Value = Vec<f64>> {
    arb_width().prop_flat_map(|w| proptest::collection::vec(arb_score(), w))
}

/// A random ergodic chain of 3..=6 states with strictly positive entries.
fn arb_chain() -> impl Strategy<Value = MarkovChain> {
    (3usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, n), n).prop_map(|rows| {
            MarkovChain::new(TransitionMatrix::from_weights(rows).expect("positive"))
                .expect("ergodic")
        })
    })
}

/// A uniform chain: every trajectory of equal length has an identical
/// log-likelihood, so *every* slot ties across the whole population —
/// the worst case for tie collection.
fn uniform_chain(states: usize) -> MarkovChain {
    let rows = vec![vec![1.0f64; states]; states];
    MarkovChain::new(TransitionMatrix::from_weights(rows).expect("positive")).expect("ergodic")
}

/// Samples `width` trajectories of `horizon` slots as slot-major rows.
fn sample_rows(chain: &MarkovChain, width: usize, horizon: usize, seed: u64) -> Vec<Vec<CellId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let trajectories: Vec<_> = (0..width)
        .map(|_| chain.sample_trajectory(horizon, &mut rng))
        .collect();
    (0..horizon)
        .map(|t| trajectories.iter().map(|x| x.as_slice()[t]).collect())
        .collect()
}

/// The legacy per-slot argmax: scalar fold over the score row in index
/// order, from a fresh `(-inf, empty)` state.
fn legacy_argmax(scores: &[f64], lo: usize) -> (f64, Vec<(u32, f64)>) {
    let mut best = f64::NEG_INFINITY;
    let mut slot = Vec::new();
    for (j, &s) in scores.iter().enumerate() {
        fold(&mut best, &mut slot, (lo + j) as u32, s);
    }
    (best, slot)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: index {i} ({x} vs {y})");
    }
}

/// Drives the vectorized single-table kernel and the scalar
/// `LogLikelihoodTable::step` + `fold` reference over the same stream and
/// asserts bit identity of accumulators, maxima and tie candidates at
/// every slot.
fn check_single_kernel(table: &LogLikelihoodTable, rows: &[Vec<CellId>], lo: usize) {
    let width = rows.first().map_or(0, Vec::len);
    let mut accs = vec![0.0f64; width];
    let mut ref_accs = vec![0.0f64; width];
    for (t, row) in rows.iter().enumerate() {
        let prev = if t == 0 {
            None
        } else {
            Some(rows[t - 1].as_slice())
        };
        let mut best = f64::NEG_INFINITY;
        let mut slot = Vec::new();
        advance_slot_single(table, lo, row, prev, &mut accs, &mut best, &mut slot)
            .expect("valid rows");

        for (j, acc) in ref_accs.iter_mut().enumerate() {
            *acc += table.step(prev.map(|p| p[j]), row[j]);
        }
        let (ref_best, ref_slot) = legacy_argmax(&ref_accs, lo);

        assert_bits_eq(&accs, &ref_accs, "single accs");
        assert_eq!(best.to_bits(), ref_best.to_bits(), "slot {t} best");
        assert_eq!(slot, ref_slot, "slot {t} candidates");
    }
}

/// Same as [`check_single_kernel`] for the class-major mixture kernel:
/// the reference keeps user-major per-class accumulators and walks
/// classes in ascending order with the legacy strict-`>` comparison.
fn check_mixture_kernel(tables: &[LogLikelihoodTable], rows: &[Vec<CellId>], lo: usize) {
    let width = rows.first().map_or(0, Vec::len);
    let classes = tables.len();
    let mut accs = vec![0.0f64; width * classes];
    let mut scores = vec![0.0f64; width];
    let mut ref_accs = vec![vec![0.0f64; classes]; width];
    for (t, row) in rows.iter().enumerate() {
        let prev = if t == 0 {
            None
        } else {
            Some(rows[t - 1].as_slice())
        };
        let mut best = f64::NEG_INFINITY;
        let mut slot = Vec::new();
        advance_slot_mixture(
            tables,
            lo,
            row,
            prev,
            &mut accs,
            &mut scores,
            &mut best,
            &mut slot,
        )
        .expect("valid rows");

        let mut ref_scores = vec![f64::NEG_INFINITY; width];
        for (j, per_class) in ref_accs.iter_mut().enumerate() {
            for (k, table) in tables.iter().enumerate() {
                per_class[k] += table.step(prev.map(|p| p[j]), row[j]);
                if per_class[k] > ref_scores[j] {
                    ref_scores[j] = per_class[k];
                }
            }
        }
        let (ref_best, ref_slot) = legacy_argmax(&ref_scores, lo);

        for j in 0..width {
            for k in 0..classes {
                assert_eq!(
                    accs[k * width + j].to_bits(),
                    ref_accs[j][k].to_bits(),
                    "slot {t}: acc user {j} class {k}"
                );
            }
        }
        assert_bits_eq(&scores, &ref_scores, "mixture scores");
        assert_eq!(best.to_bits(), ref_best.to_bits(), "slot {t} best");
        assert_eq!(slot, ref_slot, "slot {t} candidates");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `row_max` equals the scalar left-to-right scan bitwise, including
    /// subnormal-heavy and all-`-inf` score sets.
    #[test]
    fn row_max_matches_scalar_scan(scores in arb_scores()) {
        let mut expected = f64::NEG_INFINITY;
        for &s in &scores {
            if s > expected {
                expected = s;
            }
        }
        prop_assert_eq!(row_max(&scores).to_bits(), expected.to_bits());
    }

    /// `lane_max_into` equals the elementwise strict-`>` scalar fold.
    #[test]
    fn lane_max_into_matches_elementwise_fold(
        pair in arb_width().prop_flat_map(|w| (
            proptest::collection::vec(arb_score(), w),
            proptest::collection::vec(arb_score(), w),
        ))
    ) {
        let (mut scores, block) = pair;
        let expected: Vec<f64> = scores
            .iter()
            .zip(&block)
            .map(|(&s, &b)| if b > s { b } else { s })
            .collect();
        lane_max_into(&mut scores, &block);
        for (got, want) in scores.iter().zip(&expected) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// The two-pass argmax (`row_max` + `collect_ties`) reproduces the
    /// legacy running fold's final `(best, candidates)` exactly, and its
    /// tie indices equal the tolerance-equality set by definition.
    #[test]
    fn two_pass_argmax_matches_legacy_fold(scores in arb_scores(), lo in 0usize..1000) {
        let best = row_max(&scores);
        let mut candidates = Vec::new();
        collect_ties(&scores, lo, best, &mut candidates);
        let (ref_best, ref_candidates) = legacy_argmax(&scores, lo);
        prop_assert_eq!(best.to_bits(), ref_best.to_bits());
        prop_assert_eq!(&candidates, &ref_candidates);
        let expected_ties: Vec<u32> = scores
            .iter()
            .enumerate()
            .filter(|&(_, &s)| loglik_cmp(s, best).is_eq())
            .map(|(j, _)| (lo + j) as u32)
            .collect();
        let got: Vec<u32> = candidates.iter().map(|&(i, _)| i).collect();
        prop_assert_eq!(got, expected_ties);
    }

    /// The vectorized single-table kernel is bit-for-bit the scalar
    /// `step` + `fold` walk, for dense and sparse storage, across widths
    /// on both sides of the lane boundary.
    #[test]
    fn single_kernel_matches_scalar_reference(
        chain in arb_chain(),
        width in arb_width(),
        horizon in 1usize..8,
        seed in 0u64..1000,
        lo in 0usize..100,
    ) {
        let rows = sample_rows(&chain, width, horizon, seed);
        for dense in [true, false] {
            let table = LogLikelihoodTable::with_storage(&chain, dense);
            check_single_kernel(&table, &rows, lo);
        }
    }

    /// The class-major mixture kernel is bit-for-bit the user-major
    /// ascending-class scalar walk.
    #[test]
    fn mixture_kernel_matches_scalar_reference(
        a in arb_chain(),
        width in arb_width(),
        horizon in 1usize..6,
        seed in 0u64..1000,
    ) {
        // Same state space for all classes: shuffle `a`'s rows to get a
        // second distinct model over the same cells.
        let n = a.num_states();
        let rows_w: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| 0.05 + ((i * 7 + j * 3) % 11) as f64).collect())
            .collect();
        let b = MarkovChain::new(TransitionMatrix::from_weights(rows_w).expect("positive"))
            .expect("ergodic");
        let rows = sample_rows(&a, width, horizon, seed);
        let tables = vec![
            a.log_likelihood_table(),
            b.log_likelihood_table(),
            LogLikelihoodTable::with_storage(&a, false),
        ];
        check_mixture_kernel(&tables, &rows, 0);
    }
}

/// Tie-dense stress: under a uniform chain every trajectory scores
/// identically, so each slot's tie set must be the entire population —
/// through the vectorized kernel, the legacy fold and `argmax_set` (via
/// the public batch detector) alike.
#[test]
fn uniform_chain_ties_the_whole_population_every_slot() {
    let chain = uniform_chain(5);
    let table = chain.log_likelihood_table();
    for width in [1usize, 7, 8, 9, 24, 31] {
        let rows = sample_rows(&chain, width, 6, 99);
        let mut accs = vec![0.0f64; width];
        for (t, row) in rows.iter().enumerate() {
            let prev = if t == 0 {
                None
            } else {
                Some(rows[t - 1].as_slice())
            };
            let mut best = f64::NEG_INFINITY;
            let mut slot = Vec::new();
            advance_slot_single(&table, 0, row, prev, &mut accs, &mut best, &mut slot)
                .expect("valid rows");
            assert_eq!(slot.len(), width, "width {width}, slot {t}");
            let indices: Vec<u32> = slot.iter().map(|&(i, _)| i).collect();
            let expected: Vec<u32> = (0..width as u32).collect();
            assert_eq!(indices, expected, "width {width}, slot {t}");
        }
    }
}

/// The kernel rejects bad shapes and out-of-range cells with the typed
/// errors of the scalar path, before touching any accumulator.
#[test]
fn kernel_errors_are_typed_and_atomic() {
    let chain = uniform_chain(4);
    let table = chain.log_likelihood_table();
    let row = vec![CellId::new(0), CellId::new(9)];
    let mut accs = vec![1.25f64, 1.25];
    let mut best = f64::NEG_INFINITY;
    let mut slot = Vec::new();
    let err = advance_slot_single(&table, 0, &row, None, &mut accs, &mut best, &mut slot)
        .expect_err("cell 9 is out of range");
    assert!(matches!(
        err,
        chaff_core::CoreError::CellOutOfRange { cell: 9, states: 4 }
    ));
    assert_eq!(accs, vec![1.25, 1.25], "accumulators untouched on error");

    let short = vec![CellId::new(0)];
    let err = advance_slot_single(&table, 0, &short, None, &mut accs, &mut best, &mut slot)
        .expect_err("arity mismatch");
    assert!(matches!(
        err,
        chaff_core::CoreError::LengthMismatch {
            expected: 1,
            found: 2
        }
    ));
    assert_eq!(accs, vec![1.25, 1.25], "accumulators untouched on error");
}

/// Sanity pin: the lane width the kernels chunk by is re-exported
/// unchanged from the substrate crate.
#[test]
fn lane_width_is_the_markov_lane_width() {
    assert_eq!(LANE_WIDTH, chaff_markov::LANE_WIDTH);
    assert_eq!(kernel::LANE_WIDTH, 8);
}

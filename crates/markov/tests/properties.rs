//! Property-based tests for the Markov substrate.

use chaff_markov::{
    entropy, mixing, models, stationary, CellId, MarkovChain, StateDistribution, Trajectory,
    TransitionMatrix,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing a random row-stochastic matrix of size 2..=8 with
/// strictly positive entries (hence ergodic).
fn arb_dense_matrix() -> impl Strategy<Value = TransitionMatrix> {
    (2usize..=8).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, n), n)
            .prop_map(|rows| TransitionMatrix::from_weights(rows).expect("positive weights"))
    })
}

/// Strategy producing a probability distribution of size 2..=8.
fn arb_distribution() -> impl Strategy<Value = StateDistribution> {
    (2usize..=8).prop_flat_map(|n| {
        proptest::collection::vec(0.01f64..1.0, n)
            .prop_map(|w| StateDistribution::from_weights(w).expect("positive weights"))
    })
}

proptest! {
    #[test]
    fn constructed_matrices_are_row_stochastic(m in arb_dense_matrix()) {
        for i in 0..m.num_states() {
            let sum: f64 = m.row(CellId::new(i)).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn support_matches_positive_entries(m in arb_dense_matrix()) {
        for i in 0..m.num_states() {
            let from = CellId::new(i);
            let by_scan: Vec<u32> = m.row(from).iter().enumerate()
                .filter(|(_, &p)| p > 0.0)
                .map(|(j, _)| j as u32)
                .collect();
            prop_assert_eq!(m.support(from), &by_scan[..]);
        }
    }

    #[test]
    fn stationary_is_fixed_point(m in arb_dense_matrix()) {
        let pi = stationary::stationary(&m).expect("ergodic");
        let n = m.num_states();
        for j in 0..n {
            let mut acc = 0.0;
            for i in 0..n {
                acc += pi.prob(CellId::new(i)) * m.prob(CellId::new(i), CellId::new(j));
            }
            prop_assert!((acc - pi.prob(CellId::new(j))).abs() < 1e-8);
        }
    }

    #[test]
    fn direct_and_power_solvers_agree(m in arb_dense_matrix()) {
        let a = stationary::stationary(&m).expect("power");
        let b = stationary::direct_solve(&m).expect("direct");
        prop_assert!(a.total_variation(&b) < 1e-7);
    }

    #[test]
    fn lemma_v1_collision_probability(d in arb_distribution()) {
        // Lemma V.1: sum pi^2 <= max pi.
        prop_assert!(d.collision_probability() <= d.max() + 1e-12);
    }

    #[test]
    fn entropy_rate_bounded_by_log_n(m in arb_dense_matrix()) {
        let pi = stationary::stationary(&m).expect("ergodic");
        let h = entropy::entropy_rate(&m, &pi);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (m.num_states() as f64).ln() + 1e-9);
    }

    #[test]
    fn kl_divergence_nonnegative(m in arb_dense_matrix()) {
        let n = m.num_states();
        for i in 0..n {
            for j in 0..n {
                let kl = entropy::kl_divergence(m.row(CellId::new(i)), m.row(CellId::new(j)));
                prop_assert!(kl >= -1e-12);
            }
        }
    }

    #[test]
    fn sampled_trajectories_have_positive_likelihood(
        m in arb_dense_matrix(),
        seed in 0u64..1000,
        len in 1usize..50,
    ) {
        let chain = MarkovChain::new(m).expect("ergodic");
        let mut rng = StdRng::seed_from_u64(seed);
        let x = chain.sample_trajectory(len, &mut rng);
        prop_assert_eq!(x.len(), len);
        prop_assert!(chain.log_likelihood(&x).is_finite());
    }

    #[test]
    fn prefix_likelihood_is_monotone_decreasing(
        m in arb_dense_matrix(),
        seed in 0u64..1000,
    ) {
        // Each increment is a log-probability <= 0.
        let chain = MarkovChain::new(m).expect("ergodic");
        let mut rng = StdRng::seed_from_u64(seed);
        let x = chain.sample_trajectory(30, &mut rng);
        let prefixes = chain.prefix_log_likelihoods(&x);
        for w in prefixes.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn mixing_time_zero_iff_already_uniform(n in 2usize..6) {
        let m = TransitionMatrix::uniform(n).expect("n > 0");
        let pi = stationary::stationary(&m).expect("ergodic");
        // Point masses at t=0 are far from uniform; one step mixes exactly.
        prop_assert_eq!(mixing::mixing_time(&m, &pi, 1e-9, 5), Some(1));
    }

    #[test]
    fn coincidences_bounded_by_length(
        a in proptest::collection::vec(0usize..5, 0..30),
        b in proptest::collection::vec(0usize..5, 0..30),
    ) {
        let ta = Trajectory::from_indices(a.clone());
        let tb = Trajectory::from_indices(b.clone());
        let c = ta.coincidences(&tb);
        prop_assert!(c <= a.len().min(b.len()));
        // Symmetry.
        prop_assert_eq!(c, tb.coincidences(&ta));
    }

    #[test]
    fn model_builders_always_ergodic(l in 2usize..12, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        for kind in models::ModelKind::ALL {
            let m = kind.build(l, &mut rng).expect("valid size");
            prop_assert!(m.is_ergodic());
        }
    }
}

//! Columnar log-likelihood kernel: a precomputed log-transition table
//! plus slot-major batch scoring for fleet-scale detection.
//!
//! [`MarkovChain::log_likelihood`] recomputes `ln` per step and walks the
//! matrix row by row per trajectory — fine for one user, wasteful for a
//! fleet. [`LogLikelihoodTable`] pays the `ln` cost once per model (dense
//! table for small state spaces, sparse per-row tables above
//! [`DENSE_STATE_LIMIT`]) and then scores arbitrarily many trajectories
//! with pure lookups. [`LogLikelihoodTable::step_log_likelihoods_batch`]
//! emits the increments *slot-major* (`out[t * n + i]`), which is exactly
//! the access order of a per-slot cumulative-score update, so the batched
//! detectors in `chaff-core` stream it with unit stride.

use crate::{CellId, MarkovChain, MarkovError, Result, Trajectory};

/// Largest state-space size for which the dense `L × L` log table is
/// materialized; larger models use sparse per-row tables (trace-driven
/// matrices are extremely sparse, so the dense table would be mostly
/// `-inf` padding).
pub const DENSE_STATE_LIMIT: usize = 2048;

/// Fixed chunk width (in `f64` lanes) used by the batched kernels.
///
/// [`LogLikelihoodTable::add_step_batch`] and the argmax kernels in
/// `chaff-core` process users in chunks of this many lanes so the
/// autovectorizer can lower the straight-line chunk bodies to SIMD
/// (eight `f64`s fill an AVX-512 register, or two AVX2 registers).
/// Chunking never changes results: each user's accumulator receives
/// exactly the same single add per slot regardless of the chunk width.
pub const LANE_WIDTH: usize = 8;

/// Storage backing a [`LogLikelihoodTable`].
#[derive(Debug, Clone)]
enum TableStorage {
    /// Row-major `n * n` log-probabilities (`-inf` on zero entries).
    Dense(Vec<f64>),
    /// CSR-style per-row support: `cols[row_starts[i]..row_starts[i+1]]`
    /// are the sorted positive-probability destinations from `i`, with
    /// matching log-probabilities in `logs`.
    Sparse {
        row_starts: Vec<usize>,
        cols: Vec<u32>,
        logs: Vec<f64>,
    },
}

/// A precomputed log-likelihood table for one mobility model.
///
/// Holds `log π` and `log P` so that scoring a step is a table lookup
/// instead of a `ln` evaluation. Build it once per model via
/// [`MarkovChain::log_likelihood_table`] and reuse it across every
/// trajectory in a fleet.
///
/// # Example
///
/// ```
/// use chaff_markov::{MarkovChain, Trajectory, TransitionMatrix};
///
/// # fn main() -> Result<(), chaff_markov::MarkovError> {
/// let m = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.3, 0.7]])?;
/// let chain = MarkovChain::new(m)?;
/// let table = chain.log_likelihood_table();
/// let x = Trajectory::from_indices([0, 0, 1]);
/// let steps = table.step_log_likelihoods_batch(&[x.clone()])?;
/// let total: f64 = steps.iter().sum();
/// assert!((total - chain.log_likelihood(&x)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LogLikelihoodTable {
    n: usize,
    log_initial: Vec<f64>,
    transitions: TableStorage,
}

impl LogLikelihoodTable {
    /// Builds the table for `chain`, choosing dense or sparse storage by
    /// state-space size.
    pub fn new(chain: &MarkovChain) -> Self {
        Self::with_storage(chain, chain.num_states() <= DENSE_STATE_LIMIT)
    }

    /// Builds the table with an explicit storage choice. Exposed so tests
    /// and memory-constrained callers can force the sparse representation
    /// below [`DENSE_STATE_LIMIT`].
    pub fn with_storage(chain: &MarkovChain, dense: bool) -> Self {
        let n = chain.num_states();
        let log_initial: Vec<f64> = (0..n)
            .map(|i| chain.initial().log_prob(CellId::new(i)))
            .collect();
        let transitions = if dense {
            let mut data = vec![f64::NEG_INFINITY; n * n];
            for i in 0..n {
                let from = CellId::new(i);
                for (to, p) in chain.matrix().successors(from) {
                    data[i * n + to.index()] = p.ln();
                }
            }
            TableStorage::Dense(data)
        } else {
            let mut row_starts = Vec::with_capacity(n + 1);
            let mut cols = Vec::with_capacity(chain.matrix().nnz());
            let mut logs = Vec::with_capacity(chain.matrix().nnz());
            row_starts.push(0);
            for i in 0..n {
                let from = CellId::new(i);
                for (to, p) in chain.matrix().successors(from) {
                    cols.push(to.index() as u32);
                    logs.push(p.ln());
                }
                row_starts.push(cols.len());
            }
            TableStorage::Sparse {
                row_starts,
                cols,
                logs,
            }
        };
        LogLikelihoodTable {
            n,
            log_initial,
            transitions,
        }
    }

    /// Number of cells in the state space.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Whether the table uses the dense `n × n` representation.
    pub fn is_dense(&self) -> bool {
        matches!(self.transitions, TableStorage::Dense(_))
    }

    /// `log π(cell)`.
    #[inline]
    pub fn log_initial(&self, cell: CellId) -> f64 {
        self.log_initial[cell.index()]
    }

    /// `log P(to | from)`; `-inf` when the transition has zero probability.
    #[inline]
    pub fn log_transition(&self, from: CellId, to: CellId) -> f64 {
        match &self.transitions {
            TableStorage::Dense(data) => data[from.index() * self.n + to.index()],
            TableStorage::Sparse {
                row_starts,
                cols,
                logs,
            } => sparse_walk(row_starts, cols, logs, from, to),
        }
    }

    /// The per-slot increment for slot `t`: `log π(x_t)` at the first slot,
    /// `log P(x_t | x_{t-1})` afterwards.
    #[inline]
    pub fn step(&self, prev: Option<CellId>, cell: CellId) -> f64 {
        match prev {
            None => self.log_initial(cell),
            Some(p) => self.log_transition(p, cell),
        }
    }

    /// Advances a block of running scores by one slot: for every lane `j`,
    /// `accs[j] += step(prev[j], row[j])` — `log π(row[j])` when `prev` is
    /// `None` (slot zero), `log P(row[j] | prev[j])` afterwards.
    ///
    /// This is the gather/add phase of the fleet detectors' per-slot
    /// kernel, factored into the table so the storage `match` is hoisted
    /// out of the inner loop (the legacy per-element [`step`](Self::step)
    /// re-dispatched on every lookup) and the loop bodies process users in
    /// [`LANE_WIDTH`] chunks. Each accumulator receives exactly one add,
    /// so results are bit-for-bit those of the scalar per-element walk in
    /// any chunking. `-inf + -inf` is fine; `+inf` never occurs
    /// (increments are log-probs ≤ 0), so no NaN can appear.
    ///
    /// Both rows are validated before any accumulator is touched: a
    /// failed call leaves `accs` untouched.
    ///
    /// # Errors
    ///
    /// [`MarkovError::LengthMismatch`] when `prev` or `accs` disagrees
    /// with `row` on arity, [`MarkovError::CellOutOfRange`] (lowest lane
    /// first) when a cell falls outside the state space.
    pub fn add_step_batch(
        &self,
        prev: Option<&[CellId]>,
        row: &[CellId],
        accs: &mut [f64],
    ) -> Result<()> {
        if accs.len() != row.len() {
            return Err(MarkovError::LengthMismatch {
                expected: row.len(),
                found: accs.len(),
            });
        }
        validate_cells(row, self.n)?;
        match prev {
            None => add_initial(&self.log_initial, row, accs),
            Some(prev) => {
                if prev.len() != row.len() {
                    return Err(MarkovError::LengthMismatch {
                        expected: row.len(),
                        found: prev.len(),
                    });
                }
                validate_cells(prev, self.n)?;
                match &self.transitions {
                    TableStorage::Dense(data) => add_dense(data, self.n, prev, row, accs),
                    TableStorage::Sparse {
                        row_starts,
                        cols,
                        logs,
                    } => add_sparse(row_starts, cols, logs, prev, row, accs),
                }
            }
        }
        Ok(())
    }

    /// Scores many trajectories at once, returning the per-slot increments
    /// *slot-major*: element `t * trajectories.len() + i` is trajectory
    /// `i`'s increment at slot `t` (cf.
    /// [`MarkovChain::step_log_likelihoods`], which is per-trajectory).
    ///
    /// # Errors
    ///
    /// [`MarkovError::LengthMismatch`] for ragged batches,
    /// [`MarkovError::CellOutOfRange`] for cells outside the state space.
    pub fn step_log_likelihoods_batch(&self, trajectories: &[Trajectory]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.step_log_likelihoods_batch_into(trajectories, &mut out)?;
        Ok(out)
    }

    /// [`step_log_likelihoods_batch`](Self::step_log_likelihoods_batch)
    /// writing into a caller-provided buffer (cleared first), so fleet
    /// drivers can reuse one allocation across rounds. On error the
    /// buffer's contents are unspecified (but valid).
    ///
    /// # Errors
    ///
    /// See [`step_log_likelihoods_batch`](Self::step_log_likelihoods_batch).
    pub fn step_log_likelihoods_batch_into(
        &self,
        trajectories: &[Trajectory],
        out: &mut Vec<f64>,
    ) -> Result<()> {
        out.clear();
        let n = trajectories.len();
        let horizon = trajectories.first().map_or(0, Trajectory::len);
        out.resize(n * horizon, 0.0);
        for (i, x) in trajectories.iter().enumerate() {
            if x.len() != horizon {
                return Err(MarkovError::LengthMismatch {
                    expected: horizon,
                    found: x.len(),
                });
            }
            validate_cells(x.as_slice(), self.n)?;
            let mut prev: Option<CellId> = None;
            for (t, cell) in x.iter().enumerate() {
                out[t * n + i] = self.step(prev, cell);
                prev = Some(cell);
            }
        }
        Ok(())
    }

    /// Full-trajectory log-likelihood via the table (matches
    /// [`MarkovChain::log_likelihood`] bit-for-bit: both sum the same
    /// increments in slot order).
    pub fn log_likelihood(&self, trajectory: &Trajectory) -> f64 {
        let mut acc = 0.0;
        let mut prev: Option<CellId> = None;
        for cell in trajectory.iter() {
            acc += self.step(prev, cell);
            prev = Some(cell);
        }
        acc
    }
}

/// The CSR row walk: binary search of `to` in `from`'s sorted support.
///
/// Factored out of [`LogLikelihoodTable::log_transition`] so both the
/// scalar lookup and the batched sparse gather loop inline the identical
/// walk (same comparisons, same `-inf` miss) instead of re-dispatching
/// on the storage enum per element.
#[inline(always)]
fn sparse_walk(row_starts: &[usize], cols: &[u32], logs: &[f64], from: CellId, to: CellId) -> f64 {
    let range = row_starts[from.index()]..row_starts[from.index() + 1];
    match cols[range.clone()].binary_search(&(to.index() as u32)) {
        Ok(offset) => logs[range.start + offset],
        Err(_) => f64::NEG_INFINITY,
    }
}

/// Checks every cell of `row` against the state-space size, reporting the
/// lowest offending lane. The all-clear scan is branch-free per element
/// (a vectorizable compare-reduce); the error path re-scans to name the
/// first bad cell, but only runs on failure.
#[inline]
fn validate_cells(row: &[CellId], states: usize) -> Result<()> {
    if row.iter().all(|c| c.index() < states) {
        return Ok(());
    }
    let bad = row
        .iter()
        .find(|c| c.index() >= states)
        .expect("re-scan of a failed all() finds the witness");
    Err(MarkovError::CellOutOfRange {
        cell: bad.index(),
        states,
    })
}

/// Slot-zero gather/add: `accs[j] += log π(row[j])`, in `LANE_WIDTH`
/// chunks. Cells are pre-validated by the caller.
fn add_initial(log_initial: &[f64], row: &[CellId], accs: &mut [f64]) {
    let mut cells = row.chunks_exact(LANE_WIDTH);
    let mut lanes = accs.chunks_exact_mut(LANE_WIDTH);
    for (cell, lane) in (&mut cells).zip(&mut lanes) {
        for i in 0..LANE_WIDTH {
            lane[i] += log_initial[cell[i].index()];
        }
    }
    for (cell, acc) in cells.remainder().iter().zip(lanes.into_remainder()) {
        *acc += log_initial[cell.index()];
    }
}

/// Dense transition gather/add: `accs[j] += log P(row[j] | prev[j])` from
/// the row-major `n × n` table, in `LANE_WIDTH` chunks. Both rows are
/// pre-validated, so every `prev * n + row` index is in bounds.
fn add_dense(data: &[f64], n: usize, prev: &[CellId], row: &[CellId], accs: &mut [f64]) {
    let mut prevs = prev.chunks_exact(LANE_WIDTH);
    let mut cells = row.chunks_exact(LANE_WIDTH);
    let mut lanes = accs.chunks_exact_mut(LANE_WIDTH);
    for ((from, to), lane) in (&mut prevs).zip(&mut cells).zip(&mut lanes) {
        for i in 0..LANE_WIDTH {
            lane[i] += data[from[i].index() * n + to[i].index()];
        }
    }
    for ((from, to), acc) in prevs
        .remainder()
        .iter()
        .zip(cells.remainder())
        .zip(lanes.into_remainder())
    {
        *acc += data[from.index() * n + to.index()];
    }
}

/// Sparse transition gather/add: the inlined CSR row walk per lane, in
/// `LANE_WIDTH` chunks. Both rows are pre-validated.
fn add_sparse(
    row_starts: &[usize],
    cols: &[u32],
    logs: &[f64],
    prev: &[CellId],
    row: &[CellId],
    accs: &mut [f64],
) {
    let mut prevs = prev.chunks_exact(LANE_WIDTH);
    let mut cells = row.chunks_exact(LANE_WIDTH);
    let mut lanes = accs.chunks_exact_mut(LANE_WIDTH);
    for ((from, to), lane) in (&mut prevs).zip(&mut cells).zip(&mut lanes) {
        for i in 0..LANE_WIDTH {
            lane[i] += sparse_walk(row_starts, cols, logs, from[i], to[i]);
        }
    }
    for ((from, to), acc) in prevs
        .remainder()
        .iter()
        .zip(cells.remainder())
        .zip(lanes.into_remainder())
    {
        *acc += sparse_walk(row_starts, cols, logs, *from, *to);
    }
}

impl MarkovChain {
    /// Builds the precomputed [`LogLikelihoodTable`] for this model.
    ///
    /// The table is immutable and self-contained; build it once and share
    /// it (e.g. across detection shards) by reference.
    pub fn log_likelihood_table(&self) -> LogLikelihoodTable {
        LogLikelihoodTable::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitionMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> MarkovChain {
        let m = TransitionMatrix::from_rows(vec![
            vec![0.9, 0.1, 0.0],
            vec![0.3, 0.2, 0.5],
            vec![0.0, 0.5, 0.5],
        ])
        .unwrap();
        MarkovChain::new(m).unwrap()
    }

    #[test]
    fn table_matches_chain_lookups() {
        let c = chain();
        let table = c.log_likelihood_table();
        assert!(table.is_dense());
        assert_eq!(table.num_states(), 3);
        for i in 0..3 {
            assert_eq!(
                table.log_initial(CellId::new(i)),
                c.initial().log_prob(CellId::new(i))
            );
            for j in 0..3 {
                assert_eq!(
                    table.log_transition(CellId::new(i), CellId::new(j)),
                    c.matrix().log_prob(CellId::new(i), CellId::new(j)),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn zero_probability_transitions_are_neg_infinity() {
        let table = chain().log_likelihood_table();
        assert_eq!(
            table.log_transition(CellId::new(0), CellId::new(2)),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn batch_layout_is_slot_major_and_matches_per_trajectory_steps() {
        let c = chain();
        let table = c.log_likelihood_table();
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<Trajectory> = (0..5).map(|_| c.sample_trajectory(13, &mut rng)).collect();
        let batch = table.step_log_likelihoods_batch(&xs).unwrap();
        assert_eq!(batch.len(), 5 * 13);
        for (i, x) in xs.iter().enumerate() {
            let single = c.step_log_likelihoods(x);
            for (t, &inc) in single.iter().enumerate() {
                assert_eq!(batch[t * xs.len() + i], inc, "trajectory {i}, slot {t}");
            }
        }
    }

    #[test]
    fn batch_of_empty_or_no_trajectories_is_empty() {
        let table = chain().log_likelihood_table();
        assert!(table.step_log_likelihoods_batch(&[]).unwrap().is_empty());
        assert!(table
            .step_log_likelihoods_batch(&[Trajectory::new()])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn batch_rejects_ragged_input_with_typed_error() {
        let table = chain().log_likelihood_table();
        let result = table.step_log_likelihoods_batch(&[
            Trajectory::from_indices([0, 1]),
            Trajectory::from_indices([0]),
        ]);
        assert_eq!(
            result.unwrap_err(),
            MarkovError::LengthMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn batch_rejects_out_of_range_cells_with_typed_error() {
        let table = chain().log_likelihood_table();
        let result = table.step_log_likelihoods_batch(&[Trajectory::from_indices([0, 9])]);
        assert_eq!(
            result.unwrap_err(),
            MarkovError::CellOutOfRange { cell: 9, states: 3 }
        );
    }

    #[test]
    fn add_step_batch_matches_scalar_steps_bit_for_bit() {
        let c = chain();
        let mut rng = StdRng::seed_from_u64(14);
        // Widths straddling the lane count exercise both the chunked and
        // the remainder paths; 8 and 16 are exact multiples.
        for width in [1usize, 3, 7, 8, 9, 16, 21] {
            for table in [
                LogLikelihoodTable::with_storage(&c, true),
                LogLikelihoodTable::with_storage(&c, false),
            ] {
                let xs: Vec<Trajectory> = (0..width)
                    .map(|_| c.sample_trajectory(6, &mut rng))
                    .collect();
                let mut accs = vec![0.0f64; width];
                let mut prev_row: Option<Vec<CellId>> = None;
                for t in 0..6 {
                    let row: Vec<CellId> = xs.iter().map(|x| x.cell(t)).collect();
                    table
                        .add_step_batch(prev_row.as_deref(), &row, &mut accs)
                        .unwrap();
                    for (j, x) in xs.iter().enumerate() {
                        let expected: f64 = {
                            let mut acc = 0.0;
                            let mut prev = None;
                            for cell in x.iter().take(t + 1) {
                                acc += table.step(prev, cell);
                                prev = Some(cell);
                            }
                            acc
                        };
                        assert_eq!(
                            accs[j].to_bits(),
                            expected.to_bits(),
                            "width {width}, slot {t}, lane {j}"
                        );
                    }
                    prev_row = Some(row);
                }
            }
        }
    }

    #[test]
    fn add_step_batch_rejects_bad_shapes_and_cells_atomically() {
        let table = chain().log_likelihood_table();
        let row = vec![CellId::new(0), CellId::new(1)];
        let mut accs = vec![1.5f64; 2];
        assert_eq!(
            table
                .add_step_batch(None, &row, &mut accs[..1])
                .unwrap_err(),
            MarkovError::LengthMismatch {
                expected: 2,
                found: 1
            }
        );
        assert_eq!(
            table
                .add_step_batch(Some(&row[..1]), &row, &mut accs)
                .unwrap_err(),
            MarkovError::LengthMismatch {
                expected: 2,
                found: 1
            }
        );
        let bad = vec![CellId::new(0), CellId::new(7)];
        assert_eq!(
            table.add_step_batch(None, &bad, &mut accs).unwrap_err(),
            MarkovError::CellOutOfRange { cell: 7, states: 3 }
        );
        assert_eq!(
            table
                .add_step_batch(Some(&bad), &row, &mut accs)
                .unwrap_err(),
            MarkovError::CellOutOfRange { cell: 7, states: 3 }
        );
        // Every failure above left the accumulators untouched.
        assert_eq!(accs, vec![1.5, 1.5]);
    }

    #[test]
    fn table_log_likelihood_matches_chain() {
        let c = chain();
        let table = c.log_likelihood_table();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let x = c.sample_trajectory(25, &mut rng);
            let a = table.log_likelihood(&x);
            let b = c.log_likelihood(&x);
            assert_eq!(a.to_bits(), b.to_bits(), "bit-for-bit equality");
        }
    }

    #[test]
    fn sparse_storage_agrees_with_dense_bit_for_bit() {
        let c = chain();
        let dense = LogLikelihoodTable::with_storage(&c, true);
        let sparse = LogLikelihoodTable::with_storage(&c, false);
        assert!(dense.is_dense());
        assert!(!sparse.is_dense());
        for i in 0..3 {
            for j in 0..3 {
                let a = dense.log_transition(CellId::new(i), CellId::new(j));
                let b = sparse.log_transition(CellId::new(i), CellId::new(j));
                assert_eq!(a.to_bits(), b.to_bits(), "({i},{j})");
            }
        }
        let mut rng = StdRng::seed_from_u64(13);
        let xs: Vec<Trajectory> = (0..4).map(|_| c.sample_trajectory(9, &mut rng)).collect();
        assert_eq!(
            dense.step_log_likelihoods_batch(&xs),
            sparse.step_log_likelihoods_batch(&xs)
        );
    }
}

//! Cell identifiers: the discrete locations (one MEC per cell) that all
//! substrate types index into.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one MEC coverage cell.
///
/// The paper quantizes the network field into cells, one per MEC, and a
/// `CellId` indexes into that quantization (the set `L` of Sec. II-A).
/// Cell ids are dense indices `0..L` so they double as array indices
/// throughout the workspace.
///
/// # Example
///
/// ```
/// use chaff_markov::CellId;
///
/// let cell = CellId::new(3);
/// assert_eq!(cell.index(), 3);
/// assert_eq!(format!("{cell}"), "c3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CellId(usize);

impl CellId {
    /// Creates a cell id from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        CellId(index)
    }

    /// Returns the dense index of this cell.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for CellId {
    #[inline]
    fn from(index: usize) -> Self {
        CellId(index)
    }
}

impl From<CellId> for usize {
    #[inline]
    fn from(cell: CellId) -> Self {
        cell.0
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_usize() {
        let cell = CellId::new(42);
        assert_eq!(usize::from(cell), 42);
        assert_eq!(CellId::from(42usize), cell);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::new(1) < CellId::new(2));
        assert_eq!(CellId::new(5), CellId::new(5));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CellId::new(0).to_string(), "c0");
        assert_eq!(CellId::new(958).to_string(), "c958");
    }
}

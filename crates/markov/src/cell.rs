//! Cell identifiers: the discrete locations (one MEC per cell) that all
//! substrate types index into.

use crate::MarkovError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one MEC coverage cell.
///
/// The paper quantizes the network field into cells, one per MEC, and a
/// `CellId` indexes into that quantization (the set `L` of Sec. II-A).
/// Cell ids are dense indices `0..L` so they double as array indices
/// throughout the workspace.
///
/// # Representation
///
/// Stored as a `u32` (4 bytes), which halves the footprint of every
/// trajectory arena and columnar observation log relative to a `usize`
/// cell — the difference between fitting an `N = 10⁶` fleet in memory
/// and not. Real cell spaces are bounded by the tower/MEC count, so
/// `u32` is never the limit in practice; dataset boundaries that index
/// cells from untrusted counts use the checked
/// [`from_usize`](CellId::from_usize) instead of the panicking
/// [`new`](CellId::new).
///
/// # Example
///
/// ```
/// use chaff_markov::CellId;
///
/// let cell = CellId::new(3);
/// assert_eq!(cell.index(), 3);
/// assert_eq!(format!("{cell}"), "c3");
/// assert_eq!(std::mem::size_of::<CellId>(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CellId(u32);

impl CellId {
    /// The largest representable cell index.
    pub const MAX_INDEX: usize = u32::MAX as usize;

    /// Creates a cell id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`CellId::MAX_INDEX`]; use
    /// [`from_usize`](CellId::from_usize) at dataset boundaries where the
    /// index is not already bounded by a validated state-space size.
    #[inline]
    pub const fn new(index: usize) -> Self {
        assert!(index <= CellId::MAX_INDEX, "cell index exceeds u32 range");
        CellId(index as u32)
    }

    /// Checked conversion from a dense index, for dataset boundaries
    /// (trace ingestion, tower quantization) where the cell count is not
    /// yet bounded by a validated model.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::CellIndexOverflow`] when `index` exceeds
    /// [`CellId::MAX_INDEX`].
    #[inline]
    pub fn from_usize(index: usize) -> crate::Result<Self> {
        u32::try_from(index)
            .map(CellId)
            .map_err(|_| MarkovError::CellIndexOverflow { index })
    }

    /// Returns the dense index of this cell.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for CellId {
    /// # Panics
    ///
    /// Panics if `index` exceeds [`CellId::MAX_INDEX`] (see
    /// [`CellId::new`]).
    #[inline]
    fn from(index: usize) -> Self {
        CellId::new(index)
    }
}

impl From<CellId> for usize {
    #[inline]
    fn from(cell: CellId) -> Self {
        cell.index()
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_usize() {
        let cell = CellId::new(42);
        assert_eq!(usize::from(cell), 42);
        assert_eq!(CellId::from(42usize), cell);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::new(1) < CellId::new(2));
        assert_eq!(CellId::new(5), CellId::new(5));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CellId::new(0).to_string(), "c0");
        assert_eq!(CellId::new(958).to_string(), "c958");
    }

    #[test]
    fn cells_are_four_bytes() {
        // The whole point of the u32 representation: 4 bytes per cell in
        // every trajectory arena and columnar log.
        assert_eq!(std::mem::size_of::<CellId>(), 4);
        assert_eq!(std::mem::size_of::<Option<CellId>>(), 8);
    }

    #[test]
    fn checked_conversion_accepts_the_full_u32_range() {
        assert_eq!(CellId::from_usize(0).unwrap(), CellId::new(0));
        assert_eq!(
            CellId::from_usize(CellId::MAX_INDEX).unwrap().index(),
            CellId::MAX_INDEX
        );
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn checked_conversion_rejects_oversized_indices() {
        let err = CellId::from_usize(CellId::MAX_INDEX + 1).unwrap_err();
        assert!(matches!(
            err,
            MarkovError::CellIndexOverflow { index } if index == CellId::MAX_INDEX + 1
        ));
        assert!(err.to_string().contains("cell index"));
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    #[should_panic(expected = "cell index exceeds u32 range")]
    fn unchecked_constructor_panics_on_overflow() {
        let _ = CellId::new(CellId::MAX_INDEX + 1);
    }
}

//! Epoch schedules: the slot → epoch map behind time-varying mobility.
//!
//! Real fleets are non-stationary — commuters move differently at 8 am
//! than at 3 am — but a plain [`MarkovChain`](crate::MarkovChain) fixes
//! one transition matrix for the whole horizon. An [`EpochSchedule`]
//! introduces the time dimension in the cheapest possible form: a
//! repeating pattern of *epoch* labels over slots, so slot `s` is
//! governed by epoch `pattern[s % period]`. Every layer that consumes a
//! mobility model (sampling, detection kernels, empirical estimation)
//! looks the active epoch up through [`epoch_of`](EpochSchedule::epoch_of)
//! and swaps in that epoch's chain or log-likelihood table.
//!
//! The convention, shared by the whole stack: **the epoch of slot `s`
//! governs the arrival at slot `s`** — the step `x_{s-1} → x_s` is drawn
//! from (and scored under) `epoch_of(s)`'s chain, and slot 0 draws from
//! `epoch_of(0)`'s initial distribution. Empirical estimation counts the
//! same way, so estimated per-epoch chains are consistent with the
//! generative convention.
//!
//! A one-epoch schedule ([`stationary`](EpochSchedule::stationary)) makes
//! every lookup return epoch 0, reducing the whole machinery bit-for-bit
//! to the stationary path.

use crate::{MarkovError, Result};

/// A repeating slot → epoch map (e.g. day/night, or one epoch per hour).
///
/// # Example
///
/// ```
/// use chaff_markov::EpochSchedule;
///
/// # fn main() -> Result<(), chaff_markov::MarkovError> {
/// // 12 day slots followed by 12 night slots, repeating.
/// let schedule = EpochSchedule::day_night(12, 12)?;
/// assert_eq!(schedule.num_epochs(), 2);
/// assert_eq!(schedule.period(), 24);
/// assert_eq!(schedule.epoch_of(0), 0);
/// assert_eq!(schedule.epoch_of(13), 1);
/// assert_eq!(schedule.epoch_of(24), 0); // wraps
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSchedule {
    /// One epoch label per slot of the repeating period.
    pattern: Vec<usize>,
    /// `max(pattern) + 1` — the number of per-epoch models a consumer
    /// must supply.
    num_epochs: usize,
}

impl EpochSchedule {
    /// The one-epoch schedule: every slot maps to epoch 0. The entire
    /// epoch machinery reduces bit-for-bit to the stationary path under
    /// this schedule.
    pub fn stationary() -> Self {
        EpochSchedule {
            pattern: vec![0],
            num_epochs: 1,
        }
    }

    /// Builds a schedule from an explicit repeating pattern of epoch
    /// labels: slot `s` belongs to `pattern[s % pattern.len()]`, and
    /// [`num_epochs`](Self::num_epochs) is `max(pattern) + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] for an empty pattern.
    pub fn from_pattern(pattern: Vec<usize>) -> Result<Self> {
        let max = *pattern.iter().max().ok_or(MarkovError::Empty)?;
        Ok(EpochSchedule {
            pattern,
            num_epochs: max + 1,
        })
    }

    /// The commuter schedule: `day_slots` slots of epoch 0 (day) followed
    /// by `night_slots` slots of epoch 1 (night), repeating. A zero
    /// `night_slots` (or `day_slots`) degenerates to a one-epoch
    /// schedule.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] when both lengths are zero.
    pub fn day_night(day_slots: usize, night_slots: usize) -> Result<Self> {
        let mut pattern = vec![0usize; day_slots];
        pattern.extend(std::iter::repeat(1usize).take(night_slots));
        // Relabel the degenerate all-night case so epoch indices stay
        // contiguous from 0.
        if day_slots == 0 {
            pattern.iter_mut().for_each(|e| *e = 0);
        }
        Self::from_pattern(pattern)
    }

    /// The epoch governing the arrival at slot `slot` (see the module
    /// docs for the convention).
    #[inline]
    pub fn epoch_of(&self, slot: usize) -> usize {
        self.pattern[slot % self.pattern.len()]
    }

    /// Number of distinct epochs (`max(pattern) + 1`): the number of
    /// per-epoch chains or tables a consumer must supply.
    pub fn num_epochs(&self) -> usize {
        self.num_epochs
    }

    /// Length of the repeating pattern in slots.
    pub fn period(&self) -> usize {
        self.pattern.len()
    }

    /// The repeating pattern itself, one epoch label per slot.
    pub fn pattern(&self) -> &[usize] {
        &self.pattern
    }

    /// Whether this schedule has a single epoch (and therefore reduces to
    /// the stationary path).
    pub fn is_stationary(&self) -> bool {
        self.num_epochs == 1
    }

    /// How many slots of `horizon` fall into each epoch — the weights a
    /// stationarity-assuming observer would blend per-epoch matrices by.
    pub fn slot_counts(&self, horizon: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_epochs];
        for slot in 0..horizon {
            counts[self.epoch_of(slot)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_maps_every_slot_to_epoch_zero() {
        let s = EpochSchedule::stationary();
        assert!(s.is_stationary());
        assert_eq!(s.num_epochs(), 1);
        assert_eq!(s.period(), 1);
        for slot in [0, 1, 7, 1_000_000] {
            assert_eq!(s.epoch_of(slot), 0);
        }
    }

    #[test]
    fn day_night_alternates_with_the_requested_lengths() {
        let s = EpochSchedule::day_night(3, 2).unwrap();
        assert_eq!(s.num_epochs(), 2);
        assert_eq!(s.period(), 5);
        let epochs: Vec<usize> = (0..10).map(|t| s.epoch_of(t)).collect();
        assert_eq!(epochs, vec![0, 0, 0, 1, 1, 0, 0, 0, 1, 1]);
        assert_eq!(s.slot_counts(10), vec![6, 4]);
    }

    #[test]
    fn degenerate_day_night_is_stationary() {
        for s in [
            EpochSchedule::day_night(4, 0).unwrap(),
            EpochSchedule::day_night(0, 4).unwrap(),
        ] {
            assert!(s.is_stationary(), "{s:?}");
            assert_eq!(s.epoch_of(2), 0);
        }
        assert!(matches!(
            EpochSchedule::day_night(0, 0),
            Err(MarkovError::Empty)
        ));
    }

    #[test]
    fn from_pattern_sizes_epochs_from_the_max_label() {
        let s = EpochSchedule::from_pattern(vec![0, 2, 1, 2]).unwrap();
        assert_eq!(s.num_epochs(), 3);
        assert_eq!(s.pattern(), &[0, 2, 1, 2]);
        assert_eq!(s.epoch_of(5), 2);
        assert!(matches!(
            EpochSchedule::from_pattern(Vec::new()),
            Err(MarkovError::Empty)
        ));
    }

    #[test]
    fn slot_counts_cover_partial_periods() {
        let s = EpochSchedule::from_pattern(vec![0, 1, 1]).unwrap();
        assert_eq!(s.slot_counts(4), vec![2, 2]);
        assert_eq!(s.slot_counts(0), vec![0, 0]);
    }
}

//! Heterogeneous-mobility registry: a small set of model *classes*
//! shared by an arbitrarily large fleet, optionally varying over time.
//!
//! Real populations are not i.i.d. draws of one chain — commuters,
//! couriers and tourists move differently (Esper et al., 2306.15740
//! motivate exactly this dimension). Modeling every user with their own
//! chain would cost `O(users)` tables at fleet scale; the registry
//! instead keeps a handful of [`MarkovChain`] *classes*, precomputes one
//! [`LogLikelihoodTable`] per class, and maps users onto classes with a
//! deterministic round-robin, so the memory footprint stays
//! `O(classes × epochs)` no matter how many users the fleet simulates.
//!
//! The *epoch* dimension ([`EpochSchedule`]) generalizes the classes over
//! time: a registry may hold one chain per class **per epoch** (e.g. day
//! and night commuter dynamics), and consumers look the active set up by
//! slot. A one-epoch registry — every constructor that does not name a
//! schedule — reduces bit-for-bit to the stationary behavior: epoch 0 is
//! the only epoch, and the epoch-indexed accessors collapse onto the
//! plain ones.
//!
//! The round-robin assignment `class_of(u) = u mod num_classes` is
//! deliberate: a user's class never changes when the fleet grows, which
//! preserves the fleet engine's guarantee that adding users never
//! perturbs existing users' trajectories.

use crate::{EpochSchedule, LogLikelihoodTable, MarkovChain, MarkovError, Result};

/// A registry of mobility model classes with per-class (× per-epoch)
/// cached log-likelihood tables and a deterministic user→class mapping.
///
/// All classes of all epochs must share one cell space (the MEC coverage
/// layout is common to the whole fleet even when movement patterns
/// differ).
///
/// # Example
///
/// ```
/// use chaff_markov::{models::ModelKind, MarkovChain, MobilityRegistry};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), chaff_markov::MarkovError> {
/// let mut rng = StdRng::seed_from_u64(9);
/// let registry = MobilityRegistry::new(vec![
///     MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?,
///     MarkovChain::new(ModelKind::SpatiallySkewed.build(10, &mut rng)?)?,
/// ])?;
/// assert_eq!(registry.num_classes(), 2);
/// assert_eq!(registry.num_epochs(), 1);
/// assert_eq!(registry.class_of(0), 0);
/// assert_eq!(registry.class_of(7), 1);
/// assert_eq!(registry.table(1).num_states(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MobilityRegistry {
    /// Epoch-major chain storage: `chains[epoch][class]`. Stationary
    /// registries hold exactly one epoch.
    chains: Vec<Vec<MarkovChain>>,
    /// Cached log-likelihood tables, aligned with `chains`.
    tables: Vec<Vec<LogLikelihoodTable>>,
    /// The slot → epoch map; [`EpochSchedule::stationary`] for every
    /// constructor that does not name a schedule.
    schedule: EpochSchedule,
    /// Optional explicit user→class map; `class_of(u)` reads
    /// `assignment[u % assignment.len()]`, falling back to plain
    /// round-robin when absent. Trace-backed fleets use this to keep each
    /// simulated user on the class its source trace node was clustered
    /// into (replica blocks of an amplified fleet repeat the pattern).
    assignment: Option<Vec<usize>>,
}

impl MobilityRegistry {
    /// Builds a stationary (one-epoch) registry from one chain per
    /// class, precomputing every class's log-likelihood table up front.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] when no classes are supplied and
    /// [`MarkovError::DimensionMismatch`] when the classes disagree on
    /// the number of cells.
    pub fn new(chains: Vec<MarkovChain>) -> Result<Self> {
        Self::with_epochs(vec![chains], EpochSchedule::stationary())
    }

    /// Builds a time-varying registry: one chain per class **per epoch**
    /// (`per_epoch[epoch][class]`), with `schedule` naming the epoch
    /// active at each slot. Every epoch must supply the same classes over
    /// the same cell space; a one-epoch schedule reduces bit-for-bit to
    /// [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] when `per_epoch` (or any epoch's
    /// class list) is empty, [`MarkovError::LengthMismatch`] when epochs
    /// disagree on the class count or `per_epoch` does not cover
    /// `schedule.num_epochs()`, and [`MarkovError::DimensionMismatch`]
    /// when any chain disagrees on the number of cells.
    pub fn with_epochs(per_epoch: Vec<Vec<MarkovChain>>, schedule: EpochSchedule) -> Result<Self> {
        let first_epoch = per_epoch.first().ok_or(MarkovError::Empty)?;
        let first = first_epoch.first().ok_or(MarkovError::Empty)?;
        if per_epoch.len() != schedule.num_epochs() {
            return Err(MarkovError::LengthMismatch {
                expected: schedule.num_epochs(),
                found: per_epoch.len(),
            });
        }
        let classes = first_epoch.len();
        let states = first.num_states();
        for epoch in &per_epoch {
            if epoch.len() != classes {
                return Err(MarkovError::LengthMismatch {
                    expected: classes,
                    found: epoch.len(),
                });
            }
            for chain in epoch {
                if chain.num_states() != states {
                    return Err(MarkovError::DimensionMismatch {
                        expected: states,
                        found: chain.num_states(),
                    });
                }
            }
        }
        let tables = per_epoch
            .iter()
            .map(|epoch| {
                epoch
                    .iter()
                    .map(MarkovChain::log_likelihood_table)
                    .collect()
            })
            .collect();
        Ok(MobilityRegistry {
            chains: per_epoch,
            tables,
            schedule,
            assignment: None,
        })
    }

    /// Builds a stationary registry with an explicit user→class
    /// assignment pattern: user `u` belongs to
    /// `assignment[u % assignment.len()]`.
    ///
    /// This is how empirically-clustered trace fleets are wired up: the
    /// ingestion pipeline partitions trace nodes into model classes,
    /// estimates one empirical chain per class, and passes the per-node
    /// class labels here so fleet user `u` moves by the chain of trace
    /// node `u mod nodes`. Like the round-robin default, the pattern is a
    /// pure function of the user index — growing the fleet never
    /// reassigns existing users.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] when `chains` or `assignment` is
    /// empty, [`MarkovError::DimensionMismatch`] when the classes
    /// disagree on the number of cells, and
    /// [`MarkovError::ClassOutOfRange`] when an assignment entry names a
    /// class that does not exist.
    pub fn with_assignment(chains: Vec<MarkovChain>, assignment: Vec<usize>) -> Result<Self> {
        Self::new(chains)?.assigned(assignment)
    }

    /// [`with_epochs`](Self::with_epochs) plus an explicit user→class
    /// assignment pattern (see
    /// [`with_assignment`](Self::with_assignment)).
    ///
    /// # Errors
    ///
    /// The union of [`with_epochs`](Self::with_epochs)'s and
    /// [`with_assignment`](Self::with_assignment)'s errors.
    pub fn with_epochs_and_assignment(
        per_epoch: Vec<Vec<MarkovChain>>,
        schedule: EpochSchedule,
        assignment: Vec<usize>,
    ) -> Result<Self> {
        Self::with_epochs(per_epoch, schedule)?.assigned(assignment)
    }

    /// Installs a validated assignment pattern.
    fn assigned(mut self, assignment: Vec<usize>) -> Result<Self> {
        if assignment.is_empty() {
            return Err(MarkovError::Empty);
        }
        if let Some(&bad) = assignment.iter().find(|&&c| c >= self.num_classes()) {
            return Err(MarkovError::ClassOutOfRange {
                class: bad,
                classes: self.num_classes(),
            });
        }
        self.assignment = Some(assignment);
        Ok(self)
    }

    /// A single-class stationary registry (the homogeneous fleet as a
    /// degenerate case).
    pub fn single(chain: MarkovChain) -> Self {
        let tables = vec![vec![chain.log_likelihood_table()]];
        MobilityRegistry {
            chains: vec![vec![chain]],
            tables,
            schedule: EpochSchedule::stationary(),
            assignment: None,
        }
    }

    /// Number of model classes.
    pub fn num_classes(&self) -> usize {
        self.chains[0].len()
    }

    /// Number of epochs (1 for stationary registries).
    pub fn num_epochs(&self) -> usize {
        self.chains.len()
    }

    /// The slot → epoch map ([`EpochSchedule::stationary`] for
    /// stationary registries).
    pub fn schedule(&self) -> &EpochSchedule {
        &self.schedule
    }

    /// Whether this registry holds a single epoch (and therefore behaves
    /// exactly like the pre-epoch stationary registry).
    pub fn is_stationary(&self) -> bool {
        self.num_epochs() == 1
    }

    /// Number of cells in the (shared) state space.
    pub fn num_states(&self) -> usize {
        self.chains[0][0].num_states()
    }

    /// The class user `user` belongs to: the explicit assignment pattern
    /// when one was given ([`with_assignment`](Self::with_assignment)),
    /// deterministic round-robin otherwise. Either way the class is a
    /// pure function of the user index, independent of the fleet size.
    #[inline]
    pub fn class_of(&self, user: usize) -> usize {
        match &self.assignment {
            Some(map) => map[user % map.len()],
            None => user % self.num_classes(),
        }
    }

    /// The epoch-0 mobility chain of class `class` — the stationary view
    /// (for a one-epoch registry, *the* chain of the class).
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes()`.
    pub fn chain(&self, class: usize) -> &MarkovChain {
        &self.chains[0][class]
    }

    /// The chain of class `class` in epoch `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes()` or `epoch >= num_epochs()`.
    pub fn chain_at(&self, class: usize, epoch: usize) -> &MarkovChain {
        &self.chains[epoch][class]
    }

    /// The epoch-0 chain user `user` moves by (stationary view).
    pub fn chain_of(&self, user: usize) -> &MarkovChain {
        self.chain(self.class_of(user))
    }

    /// The chain governing user `user`'s arrival at slot `slot`: the
    /// user's class under the epoch `schedule().epoch_of(slot)` names.
    /// For a one-epoch registry this is [`chain_of`](Self::chain_of) for
    /// every slot.
    #[inline]
    pub fn chain_of_at(&self, user: usize, slot: usize) -> &MarkovChain {
        &self.chains[self.schedule.epoch_of(slot)][self.class_of(user)]
    }

    /// The precomputed epoch-0 log-likelihood table of class `class`
    /// (stationary view).
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes()`.
    pub fn table(&self, class: usize) -> &LogLikelihoodTable {
        &self.tables[0][class]
    }

    /// The precomputed table of class `class` in epoch `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes()` or `epoch >= num_epochs()`.
    pub fn table_at(&self, class: usize, epoch: usize) -> &LogLikelihoodTable {
        &self.tables[epoch][class]
    }

    /// All epoch-0 per-class tables in class order — the stationary
    /// detector-side view (the eavesdropper knows the population's model
    /// mix, not any user's class).
    pub fn tables(&self) -> Vec<&LogLikelihoodTable> {
        self.tables_at(0)
    }

    /// All per-class tables of epoch `epoch`, in class order.
    ///
    /// # Panics
    ///
    /// Panics if `epoch >= num_epochs()`.
    pub fn tables_at(&self, epoch: usize) -> Vec<&LogLikelihoodTable> {
        self.tables[epoch].iter().collect()
    }

    /// Owned clones of every epoch's per-class tables, epoch-major — the
    /// construction input of schedule-aware streaming detectors, which
    /// must own their tables to outlive the registry borrow.
    pub fn to_epoch_tables(&self) -> Vec<Vec<LogLikelihoodTable>> {
        self.tables.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(kind: ModelKind, cells: usize, seed: u64) -> MarkovChain {
        let mut rng = StdRng::seed_from_u64(seed);
        MarkovChain::new(kind.build(cells, &mut rng).unwrap()).unwrap()
    }

    #[test]
    fn round_robin_is_fleet_size_independent() {
        let registry = MobilityRegistry::new(vec![
            chain(ModelKind::NonSkewed, 6, 1),
            chain(ModelKind::SpatiallySkewed, 6, 2),
            chain(ModelKind::TemporallySkewed, 6, 3),
        ])
        .unwrap();
        assert_eq!(registry.num_classes(), 3);
        for user in 0..30 {
            assert_eq!(registry.class_of(user), user % 3);
        }
    }

    #[test]
    fn tables_match_their_chains() {
        let registry = MobilityRegistry::new(vec![
            chain(ModelKind::NonSkewed, 5, 4),
            chain(ModelKind::SpatiallySkewed, 5, 5),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for class in 0..registry.num_classes() {
            let x = registry.chain(class).sample_trajectory(12, &mut rng);
            let a = registry.table(class).log_likelihood(&x);
            let b = registry.chain(class).log_likelihood(&x);
            assert_eq!(a.to_bits(), b.to_bits(), "class {class}");
        }
    }

    #[test]
    fn rejects_empty_and_mismatched_cell_spaces() {
        assert!(matches!(
            MobilityRegistry::new(Vec::new()),
            Err(MarkovError::Empty)
        ));
        let err = MobilityRegistry::new(vec![
            chain(ModelKind::NonSkewed, 5, 7),
            chain(ModelKind::NonSkewed, 6, 8),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MarkovError::DimensionMismatch {
                expected: 5,
                found: 6
            }
        ));
    }

    #[test]
    fn explicit_assignment_patterns_repeat_and_are_validated() {
        let chains = vec![
            chain(ModelKind::NonSkewed, 6, 11),
            chain(ModelKind::SpatiallySkewed, 6, 12),
        ];
        // A 3-node pattern: nodes 0 and 2 are class 1, node 1 is class 0.
        let registry = MobilityRegistry::with_assignment(chains.clone(), vec![1, 0, 1]).unwrap();
        assert_eq!(registry.num_classes(), 2);
        for user in 0..12 {
            assert_eq!(registry.class_of(user), [1, 0, 1][user % 3], "user {user}");
        }
        // Growing the fleet never reassigns existing users.
        assert_eq!(registry.class_of(4), registry.class_of(4));

        // Out-of-range class labels and empty patterns are rejected,
        // with a class-worded (not cell-worded) error.
        let err = MobilityRegistry::with_assignment(chains.clone(), vec![0, 2]).unwrap_err();
        assert!(matches!(
            err,
            MarkovError::ClassOutOfRange {
                class: 2,
                classes: 2
            }
        ));
        assert!(err.to_string().contains("mobility classes"), "{err}");
        assert!(matches!(
            MobilityRegistry::with_assignment(chains, Vec::new()),
            Err(MarkovError::Empty)
        ));
    }

    #[test]
    fn single_class_registry_wraps_one_chain() {
        let registry = MobilityRegistry::single(chain(ModelKind::NonSkewed, 4, 9));
        assert_eq!(registry.num_classes(), 1);
        assert_eq!(registry.num_states(), 4);
        assert_eq!(registry.num_epochs(), 1);
        assert!(registry.is_stationary());
        assert_eq!(registry.class_of(123), 0);
        assert_eq!(registry.tables().len(), 1);
    }

    #[test]
    fn epoch_registry_looks_up_the_slot_active_chain() {
        let day = vec![
            chain(ModelKind::NonSkewed, 6, 21),
            chain(ModelKind::SpatiallySkewed, 6, 22),
        ];
        let night = vec![
            chain(ModelKind::TemporallySkewed, 6, 23),
            chain(ModelKind::SpatioTemporallySkewed, 6, 24),
        ];
        let schedule = EpochSchedule::day_night(2, 3).unwrap();
        let registry =
            MobilityRegistry::with_epochs(vec![day.clone(), night.clone()], schedule).unwrap();
        assert_eq!(registry.num_epochs(), 2);
        assert_eq!(registry.num_classes(), 2);
        assert!(!registry.is_stationary());
        // Slots 0–1 are day, 2–4 night, then the pattern repeats.
        assert_eq!(
            registry.chain_of_at(0, 1).matrix(),
            registry.chain_at(0, 0).matrix()
        );
        assert_eq!(
            registry.chain_of_at(0, 3).matrix(),
            registry.chain_at(0, 1).matrix()
        );
        assert_eq!(
            registry.chain_of_at(1, 5).matrix(),
            registry.chain_at(1, 0).matrix()
        );
        // The stationary accessors are the epoch-0 (day) view.
        assert_eq!(registry.chain(1).matrix(), day[1].matrix());
        assert_eq!(registry.table(1).num_states(), 6);
        assert_eq!(registry.chain_at(1, 1).matrix(), night[1].matrix());
        // Per-epoch tables match their chains bit-for-bit.
        let mut rng = StdRng::seed_from_u64(25);
        for epoch in 0..2 {
            for class in 0..2 {
                let x = registry
                    .chain_at(class, epoch)
                    .sample_trajectory(9, &mut rng);
                let a = registry.table_at(class, epoch).log_likelihood(&x);
                let b = registry.chain_at(class, epoch).log_likelihood(&x);
                assert_eq!(a.to_bits(), b.to_bits(), "epoch {epoch} class {class}");
            }
        }
        assert_eq!(registry.to_epoch_tables().len(), 2);
        assert_eq!(registry.tables_at(1).len(), 2);
    }

    #[test]
    fn one_epoch_registry_reduces_to_the_stationary_constructor() {
        let chains = vec![
            chain(ModelKind::NonSkewed, 5, 31),
            chain(ModelKind::SpatiallySkewed, 5, 32),
        ];
        let stationary = MobilityRegistry::new(chains.clone()).unwrap();
        let epoch =
            MobilityRegistry::with_epochs(vec![chains], EpochSchedule::stationary()).unwrap();
        for class in 0..2 {
            assert_eq!(
                stationary.chain(class).matrix(),
                epoch.chain(class).matrix()
            );
            for slot in 0..7 {
                assert_eq!(
                    epoch.chain_of_at(class, slot).matrix(),
                    stationary.chain_of(class).matrix()
                );
            }
        }
    }

    #[test]
    fn epoch_constructors_validate_shapes() {
        let a = chain(ModelKind::NonSkewed, 5, 41);
        let b = chain(ModelKind::SpatiallySkewed, 5, 42);
        let wide = chain(ModelKind::NonSkewed, 6, 43);
        let two = EpochSchedule::day_night(1, 1).unwrap();
        // Epoch count must match the schedule.
        assert!(matches!(
            MobilityRegistry::with_epochs(vec![vec![a.clone()]], two.clone()),
            Err(MarkovError::LengthMismatch {
                expected: 2,
                found: 1
            })
        ));
        // Epochs must agree on the class count.
        assert!(matches!(
            MobilityRegistry::with_epochs(
                vec![vec![a.clone(), b.clone()], vec![a.clone()]],
                two.clone()
            ),
            Err(MarkovError::LengthMismatch {
                expected: 2,
                found: 1
            })
        ));
        // All chains must share the cell space.
        assert!(matches!(
            MobilityRegistry::with_epochs(vec![vec![a.clone()], vec![wide]], two.clone()),
            Err(MarkovError::DimensionMismatch {
                expected: 5,
                found: 6
            })
        ));
        // Empty inputs fail typed.
        assert!(matches!(
            MobilityRegistry::with_epochs(Vec::new(), EpochSchedule::stationary()),
            Err(MarkovError::Empty)
        ));
        assert!(matches!(
            MobilityRegistry::with_epochs(vec![Vec::new()], EpochSchedule::stationary()),
            Err(MarkovError::Empty)
        ));
        // Assignments validate against the class count, epochs included.
        assert!(matches!(
            MobilityRegistry::with_epochs_and_assignment(
                vec![vec![a.clone()], vec![b]],
                two,
                vec![0, 1]
            ),
            Err(MarkovError::ClassOutOfRange {
                class: 1,
                classes: 1
            })
        ));
    }
}

//! Heterogeneous-mobility registry: a small set of model *classes*
//! shared by an arbitrarily large fleet.
//!
//! Real populations are not i.i.d. draws of one chain — commuters,
//! couriers and tourists move differently (Esper et al., 2306.15740
//! motivate exactly this dimension). Modeling every user with their own
//! chain would cost `O(users)` tables at fleet scale; the registry
//! instead keeps a handful of [`MarkovChain`] *classes*, precomputes one
//! [`LogLikelihoodTable`] per class, and maps users onto classes with a
//! deterministic round-robin, so the memory footprint stays
//! `O(classes)` no matter how many users the fleet simulates.
//!
//! The round-robin assignment `class_of(u) = u mod num_classes` is
//! deliberate: a user's class never changes when the fleet grows, which
//! preserves the fleet engine's guarantee that adding users never
//! perturbs existing users' trajectories.

use crate::{LogLikelihoodTable, MarkovChain, MarkovError, Result};

/// A registry of mobility model classes with per-class cached
/// log-likelihood tables and a deterministic user→class mapping.
///
/// All classes must share one cell space (the MEC coverage layout is
/// common to the whole fleet even when movement patterns differ).
///
/// # Example
///
/// ```
/// use chaff_markov::{models::ModelKind, MarkovChain, MobilityRegistry};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), chaff_markov::MarkovError> {
/// let mut rng = StdRng::seed_from_u64(9);
/// let registry = MobilityRegistry::new(vec![
///     MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?,
///     MarkovChain::new(ModelKind::SpatiallySkewed.build(10, &mut rng)?)?,
/// ])?;
/// assert_eq!(registry.num_classes(), 2);
/// assert_eq!(registry.class_of(0), 0);
/// assert_eq!(registry.class_of(7), 1);
/// assert_eq!(registry.table(1).num_states(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MobilityRegistry {
    chains: Vec<MarkovChain>,
    tables: Vec<LogLikelihoodTable>,
    /// Optional explicit user→class map; `class_of(u)` reads
    /// `assignment[u % assignment.len()]`, falling back to plain
    /// round-robin when absent. Trace-backed fleets use this to keep each
    /// simulated user on the class its source trace node was clustered
    /// into (replica blocks of an amplified fleet repeat the pattern).
    assignment: Option<Vec<usize>>,
}

impl MobilityRegistry {
    /// Builds a registry from one chain per class, precomputing every
    /// class's log-likelihood table up front.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] when no classes are supplied and
    /// [`MarkovError::DimensionMismatch`] when the classes disagree on
    /// the number of cells.
    pub fn new(chains: Vec<MarkovChain>) -> Result<Self> {
        let first = chains.first().ok_or(MarkovError::Empty)?;
        let states = first.num_states();
        for chain in &chains {
            if chain.num_states() != states {
                return Err(MarkovError::DimensionMismatch {
                    expected: states,
                    found: chain.num_states(),
                });
            }
        }
        let tables = chains
            .iter()
            .map(MarkovChain::log_likelihood_table)
            .collect();
        Ok(MobilityRegistry {
            chains,
            tables,
            assignment: None,
        })
    }

    /// Builds a registry with an explicit user→class assignment pattern:
    /// user `u` belongs to `assignment[u % assignment.len()]`.
    ///
    /// This is how empirically-clustered trace fleets are wired up: the
    /// ingestion pipeline partitions trace nodes into model classes,
    /// estimates one empirical chain per class, and passes the per-node
    /// class labels here so fleet user `u` moves by the chain of trace
    /// node `u mod nodes`. Like the round-robin default, the pattern is a
    /// pure function of the user index — growing the fleet never
    /// reassigns existing users.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] when `chains` or `assignment` is
    /// empty, [`MarkovError::DimensionMismatch`] when the classes
    /// disagree on the number of cells, and
    /// [`MarkovError::ClassOutOfRange`] when an assignment entry names a
    /// class that does not exist.
    pub fn with_assignment(chains: Vec<MarkovChain>, assignment: Vec<usize>) -> Result<Self> {
        let mut registry = Self::new(chains)?;
        if assignment.is_empty() {
            return Err(MarkovError::Empty);
        }
        if let Some(&bad) = assignment.iter().find(|&&c| c >= registry.num_classes()) {
            return Err(MarkovError::ClassOutOfRange {
                class: bad,
                classes: registry.num_classes(),
            });
        }
        registry.assignment = Some(assignment);
        Ok(registry)
    }

    /// A single-class registry (the homogeneous fleet as a degenerate
    /// case).
    pub fn single(chain: MarkovChain) -> Self {
        let tables = vec![chain.log_likelihood_table()];
        MobilityRegistry {
            chains: vec![chain],
            tables,
            assignment: None,
        }
    }

    /// Number of model classes.
    pub fn num_classes(&self) -> usize {
        self.chains.len()
    }

    /// Number of cells in the (shared) state space.
    pub fn num_states(&self) -> usize {
        self.chains[0].num_states()
    }

    /// The class user `user` belongs to: the explicit assignment pattern
    /// when one was given ([`with_assignment`](Self::with_assignment)),
    /// deterministic round-robin otherwise. Either way the class is a
    /// pure function of the user index, independent of the fleet size.
    #[inline]
    pub fn class_of(&self, user: usize) -> usize {
        match &self.assignment {
            Some(map) => map[user % map.len()],
            None => user % self.chains.len(),
        }
    }

    /// The mobility chain of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes()`.
    pub fn chain(&self, class: usize) -> &MarkovChain {
        &self.chains[class]
    }

    /// The chain user `user` moves by.
    pub fn chain_of(&self, user: usize) -> &MarkovChain {
        &self.chains[self.class_of(user)]
    }

    /// The precomputed log-likelihood table of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes()`.
    pub fn table(&self, class: usize) -> &LogLikelihoodTable {
        &self.tables[class]
    }

    /// All per-class tables in class order — the detector-side view (the
    /// eavesdropper knows the population's model mix, not any user's
    /// class).
    pub fn tables(&self) -> Vec<&LogLikelihoodTable> {
        self.tables.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(kind: ModelKind, cells: usize, seed: u64) -> MarkovChain {
        let mut rng = StdRng::seed_from_u64(seed);
        MarkovChain::new(kind.build(cells, &mut rng).unwrap()).unwrap()
    }

    #[test]
    fn round_robin_is_fleet_size_independent() {
        let registry = MobilityRegistry::new(vec![
            chain(ModelKind::NonSkewed, 6, 1),
            chain(ModelKind::SpatiallySkewed, 6, 2),
            chain(ModelKind::TemporallySkewed, 6, 3),
        ])
        .unwrap();
        assert_eq!(registry.num_classes(), 3);
        for user in 0..30 {
            assert_eq!(registry.class_of(user), user % 3);
        }
    }

    #[test]
    fn tables_match_their_chains() {
        let registry = MobilityRegistry::new(vec![
            chain(ModelKind::NonSkewed, 5, 4),
            chain(ModelKind::SpatiallySkewed, 5, 5),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for class in 0..registry.num_classes() {
            let x = registry.chain(class).sample_trajectory(12, &mut rng);
            let a = registry.table(class).log_likelihood(&x);
            let b = registry.chain(class).log_likelihood(&x);
            assert_eq!(a.to_bits(), b.to_bits(), "class {class}");
        }
    }

    #[test]
    fn rejects_empty_and_mismatched_cell_spaces() {
        assert!(matches!(
            MobilityRegistry::new(Vec::new()),
            Err(MarkovError::Empty)
        ));
        let err = MobilityRegistry::new(vec![
            chain(ModelKind::NonSkewed, 5, 7),
            chain(ModelKind::NonSkewed, 6, 8),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MarkovError::DimensionMismatch {
                expected: 5,
                found: 6
            }
        ));
    }

    #[test]
    fn explicit_assignment_patterns_repeat_and_are_validated() {
        let chains = vec![
            chain(ModelKind::NonSkewed, 6, 11),
            chain(ModelKind::SpatiallySkewed, 6, 12),
        ];
        // A 3-node pattern: nodes 0 and 2 are class 1, node 1 is class 0.
        let registry = MobilityRegistry::with_assignment(chains.clone(), vec![1, 0, 1]).unwrap();
        assert_eq!(registry.num_classes(), 2);
        for user in 0..12 {
            assert_eq!(registry.class_of(user), [1, 0, 1][user % 3], "user {user}");
        }
        // Growing the fleet never reassigns existing users.
        assert_eq!(registry.class_of(4), registry.class_of(4));

        // Out-of-range class labels and empty patterns are rejected,
        // with a class-worded (not cell-worded) error.
        let err = MobilityRegistry::with_assignment(chains.clone(), vec![0, 2]).unwrap_err();
        assert!(matches!(
            err,
            MarkovError::ClassOutOfRange {
                class: 2,
                classes: 2
            }
        ));
        assert!(err.to_string().contains("mobility classes"), "{err}");
        assert!(matches!(
            MobilityRegistry::with_assignment(chains, Vec::new()),
            Err(MarkovError::Empty)
        ));
    }

    #[test]
    fn single_class_registry_wraps_one_chain() {
        let registry = MobilityRegistry::single(chain(ModelKind::NonSkewed, 4, 9));
        assert_eq!(registry.num_classes(), 1);
        assert_eq!(registry.num_states(), 4);
        assert_eq!(registry.class_of(123), 0);
        assert_eq!(registry.tables().len(), 1);
    }
}

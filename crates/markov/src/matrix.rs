//! Row-stochastic transition matrices with cached sparsity support.

use crate::{CellId, MarkovError, Result};
use serde::{Deserialize, Serialize};

/// Tolerance used when checking that a row sums to one.
const ROW_SUM_TOLERANCE: f64 = 1e-6;

/// A validated row-stochastic transition matrix over a finite cell space.
///
/// This is the matrix `P = (P(x_t | x_{t-1}))` of the paper's user mobility
/// model (Sec. II-C). Rows are indexed by the *origin* cell and columns by
/// the *destination* cell, so `prob(from, to)` is the probability of moving
/// from `from` to `to` in one slot.
///
/// Besides dense storage, the matrix keeps a sorted support list per row
/// (the columns with strictly positive probability). Empirical matrices
/// estimated from traces are extremely sparse, and every downstream
/// algorithm (trellis shortest path, the OO dynamic program, the greedy
/// online strategies) iterates supports instead of full rows, which is what
/// makes the paper's 959-cell trace experiments tractable.
///
/// # Example
///
/// ```
/// use chaff_markov::{CellId, TransitionMatrix};
///
/// # fn main() -> Result<(), chaff_markov::MarkovError> {
/// let matrix = TransitionMatrix::from_rows(vec![
///     vec![0.5, 0.5],
///     vec![0.25, 0.75],
/// ])?;
/// assert_eq!(matrix.num_states(), 2);
/// assert_eq!(matrix.prob(CellId::new(1), CellId::new(0)), 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionMatrix {
    n: usize,
    /// Row-major dense probabilities, length `n * n`.
    data: Vec<f64>,
    /// Sorted column indices with positive probability, one list per row.
    support: Vec<Vec<u32>>,
}

impl TransitionMatrix {
    /// Builds a matrix from per-row probability vectors.
    ///
    /// # Errors
    ///
    /// Returns an error if the input is empty, rows have inconsistent
    /// lengths, any entry is negative or non-finite, or any row does not
    /// sum to one (within `1e-6`).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let n = rows.len();
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        let mut data = Vec::with_capacity(n * n);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(MarkovError::NotSquare {
                    rows: n,
                    data_len: n * row.len(),
                });
            }
            for (j, &p) in row.iter().enumerate() {
                if !p.is_finite() || p < 0.0 {
                    return Err(MarkovError::InvalidProbability {
                        row: i,
                        col: j,
                        value: p,
                    });
                }
            }
            data.extend_from_slice(row);
        }
        Self::from_flat(n, data)
    }

    /// Builds a matrix from a row-major flat buffer of `n * n` entries.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as [`from_rows`].
    ///
    /// [`from_rows`]: TransitionMatrix::from_rows
    pub fn from_flat(n: usize, data: Vec<f64>) -> Result<Self> {
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        if data.len() != n * n {
            return Err(MarkovError::NotSquare {
                rows: n,
                data_len: data.len(),
            });
        }
        let mut support = Vec::with_capacity(n);
        for i in 0..n {
            let row = &data[i * n..(i + 1) * n];
            let mut sum = 0.0;
            let mut cols = Vec::new();
            for (j, &p) in row.iter().enumerate() {
                if !p.is_finite() || p < 0.0 {
                    return Err(MarkovError::InvalidProbability {
                        row: i,
                        col: j,
                        value: p,
                    });
                }
                if p > 0.0 {
                    cols.push(j as u32);
                }
                sum += p;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                return Err(MarkovError::RowNotStochastic { row: i, sum });
            }
            support.push(cols);
        }
        Ok(TransitionMatrix { n, data, support })
    }

    /// Builds a matrix by normalizing non-negative row weights.
    ///
    /// Each row is divided by its sum; this is how the paper constructs the
    /// synthetic models ("generating a matrix of random values ... and
    /// normalizing each row").
    ///
    /// # Errors
    ///
    /// Returns an error if the input is empty or ragged, any weight is
    /// negative or non-finite, or a row sums to zero.
    pub fn from_weights(rows: Vec<Vec<f64>>) -> Result<Self> {
        let n = rows.len();
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        let mut normalized = Vec::with_capacity(n);
        for (i, row) in rows.into_iter().enumerate() {
            if row.len() != n {
                return Err(MarkovError::NotSquare {
                    rows: n,
                    data_len: n * row.len(),
                });
            }
            let mut sum = 0.0;
            for (j, &w) in row.iter().enumerate() {
                if !w.is_finite() || w < 0.0 {
                    return Err(MarkovError::InvalidProbability {
                        row: i,
                        col: j,
                        value: w,
                    });
                }
                sum += w;
            }
            if sum <= 0.0 {
                return Err(MarkovError::RowNotStochastic { row: i, sum });
            }
            normalized.push(row.into_iter().map(|w| w / sum).collect());
        }
        Self::from_rows(normalized)
    }

    /// Builds the uniform matrix where every transition has probability `1/n`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        let p = 1.0 / n as f64;
        Self::from_flat(n, vec![p; n * n])
    }

    /// Builds the identity matrix (every state is absorbing).
    ///
    /// Useful as a degenerate fixture in tests; note it is not ergodic for
    /// `n > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] if `n == 0`.
    pub fn identity(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self::from_flat(n, data)
    }

    /// Number of states (cells) in the space.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Transition probability `P(to | from)`.
    ///
    /// # Panics
    ///
    /// Panics if either cell index is out of range.
    #[inline]
    pub fn prob(&self, from: CellId, to: CellId) -> f64 {
        self.data[from.index() * self.n + to.index()]
    }

    /// Natural-log transition probability; `-inf` when the probability is 0.
    #[inline]
    pub fn log_prob(&self, from: CellId, to: CellId) -> f64 {
        let p = self.prob(from, to);
        if p > 0.0 {
            p.ln()
        } else {
            f64::NEG_INFINITY
        }
    }

    /// The dense probability row for origin `from`.
    #[inline]
    pub fn row(&self, from: CellId) -> &[f64] {
        &self.data[from.index() * self.n..(from.index() + 1) * self.n]
    }

    /// Sorted destination indices with positive probability from `from`.
    #[inline]
    pub fn support(&self, from: CellId) -> &[u32] {
        &self.support[from.index()]
    }

    /// Iterates `(destination, probability)` pairs with positive probability,
    /// in increasing destination order.
    pub fn successors(&self, from: CellId) -> impl Iterator<Item = (CellId, f64)> + '_ {
        let row = self.row(from);
        self.support[from.index()]
            .iter()
            .map(move |&j| (CellId::new(j as usize), row[j as usize]))
    }

    /// Total number of positive entries across all rows.
    pub fn nnz(&self) -> usize {
        self.support.iter().map(Vec::len).sum()
    }

    /// Most likely destination from `from`, excluding `exclude` if given.
    ///
    /// Ties break towards the lowest cell index, which makes every strategy
    /// built on this helper deterministic — the paper's advanced-eavesdropper
    /// analysis assumes the tie-breaker is known (Sec. VI-A2).
    ///
    /// Returns `None` when every admissible destination has zero probability.
    pub fn argmax_successor(&self, from: CellId, exclude: Option<CellId>) -> Option<(CellId, f64)> {
        let mut best: Option<(CellId, f64)> = None;
        for (cell, p) in self.successors(from) {
            if Some(cell) == exclude {
                continue;
            }
            match best {
                Some((_, bp)) if bp >= p => {}
                _ => best = Some((cell, p)),
            }
        }
        best
    }

    /// Largest transition probability in the whole matrix (the paper's
    /// `p_max`).
    pub fn max_prob(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest *positive* transition probability (the paper's `p_min`).
    ///
    /// Returns `None` for the (invalid) all-zero matrix, which construction
    /// rules out.
    pub fn min_positive_prob(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|&p| p > 0.0)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.min(p))))
    }

    /// Second-largest probability in row `from` (the paper's `p_2(x')`),
    /// i.e. the largest probability attainable after excluding one copy of
    /// the row maximum.
    ///
    /// Returns 0 when the row has a single positive entry.
    pub fn second_max_in_row(&self, from: CellId) -> f64 {
        let mut best = 0.0f64;
        let mut second = 0.0f64;
        for (_, p) in self.successors(from) {
            if p > best {
                second = best;
                best = p;
            } else if p > second {
                second = p;
            }
        }
        second
    }

    /// Minimum over rows of the second-largest row probability (the paper's
    /// `p_2 = min_{x'} p_2(x')`).
    pub fn p2(&self) -> f64 {
        (0..self.n)
            .map(|i| self.second_max_in_row(CellId::new(i)))
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether the support digraph is strongly connected (irreducible chain).
    pub fn is_irreducible(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        self.reaches_all_forward() && self.reaches_all_backward()
    }

    /// Whether the chain is aperiodic, assuming it is irreducible.
    ///
    /// Computes the gcd of closed-walk lengths through state 0 using the
    /// standard BFS-level argument; an irreducible chain is aperiodic iff
    /// that gcd is 1. A self-loop anywhere makes an irreducible chain
    /// aperiodic immediately.
    pub fn is_aperiodic(&self) -> bool {
        if (0..self.n).any(|i| self.prob(CellId::new(i), CellId::new(i)) > 0.0) {
            return true;
        }
        // gcd of (level(u) + 1 - level(v)) over all edges u -> v, from a BFS
        // rooted at state 0.
        let mut level = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        level[0] = 0;
        queue.push_back(0usize);
        let mut g: usize = 0;
        while let Some(u) = queue.pop_front() {
            for &jv in &self.support[u] {
                let v = jv as usize;
                if level[v] == usize::MAX {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                } else {
                    let diff = (level[u] + 1).abs_diff(level[v]);
                    g = gcd(g, diff);
                    if g == 1 {
                        return true;
                    }
                }
            }
        }
        g == 1
    }

    /// Whether the chain is ergodic (irreducible and aperiodic), i.e. has a
    /// unique stationary distribution that every start converges to.
    pub fn is_ergodic(&self) -> bool {
        self.is_irreducible() && self.is_aperiodic()
    }

    /// Multiplies a distribution (row vector) by this matrix: `out = d P`.
    ///
    /// Iterates row supports, so the cost is `O(nnz)` rather than `O(n^2)`.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != num_states()` (debug assertion) — callers inside
    /// this workspace always pass matching dimensions.
    pub(crate) fn apply_left(&self, d: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        out.fill(0.0);
        for (i, &mass) in d.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            let row = &self.data[i * self.n..(i + 1) * self.n];
            for &j in &self.support[i] {
                out[j as usize] += mass * row[j as usize];
            }
        }
    }

    fn reaches_all_forward(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &j in &self.support[u] {
                let v = j as usize;
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }

    fn reaches_all_backward(&self) -> bool {
        // Build reverse adjacency once.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for (u, cols) in self.support.iter().enumerate() {
            for &j in cols {
                rev[j as usize].push(u as u32);
            }
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &j in &rev[u] {
                let v = j as usize;
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> TransitionMatrix {
        TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.25, 0.75]]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            TransitionMatrix::from_rows(vec![]).unwrap_err(),
            MarkovError::Empty
        );
    }

    #[test]
    fn rejects_non_square() {
        let err = TransitionMatrix::from_rows(vec![vec![1.0, 0.0]]).unwrap_err();
        assert!(matches!(err, MarkovError::NotSquare { .. }));
    }

    #[test]
    fn rejects_bad_row_sum() {
        let err = TransitionMatrix::from_rows(vec![vec![0.5, 0.4], vec![0.5, 0.5]]).unwrap_err();
        assert!(matches!(err, MarkovError::RowNotStochastic { row: 0, .. }));
    }

    #[test]
    fn rejects_negative_entry() {
        let err = TransitionMatrix::from_rows(vec![vec![1.5, -0.5], vec![0.5, 0.5]]).unwrap_err();
        assert!(matches!(
            err,
            MarkovError::InvalidProbability { row: 0, col: 1, .. }
        ));
    }

    #[test]
    fn rejects_nan() {
        let err =
            TransitionMatrix::from_rows(vec![vec![f64::NAN, 1.0], vec![0.5, 0.5]]).unwrap_err();
        assert!(matches!(err, MarkovError::InvalidProbability { .. }));
    }

    #[test]
    fn from_weights_normalizes() {
        let m = TransitionMatrix::from_weights(vec![vec![2.0, 2.0], vec![1.0, 3.0]]).unwrap();
        assert!((m.prob(CellId::new(0), CellId::new(1)) - 0.5).abs() < 1e-12);
        assert!((m.prob(CellId::new(1), CellId::new(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rejects_zero_row() {
        let err = TransitionMatrix::from_weights(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap_err();
        assert!(matches!(err, MarkovError::RowNotStochastic { row: 0, .. }));
    }

    #[test]
    fn support_lists_positive_entries_only() {
        let m = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.5, 0.5]]).unwrap();
        assert_eq!(m.support(CellId::new(0)), &[1]);
        assert_eq!(m.support(CellId::new(1)), &[0, 1]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn log_prob_of_zero_is_neg_infinity() {
        let m = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.5, 0.5]]).unwrap();
        assert_eq!(
            m.log_prob(CellId::new(0), CellId::new(0)),
            f64::NEG_INFINITY
        );
        assert_eq!(m.log_prob(CellId::new(0), CellId::new(1)), 0.0);
    }

    #[test]
    fn argmax_successor_breaks_ties_low_index() {
        let m = TransitionMatrix::from_rows(vec![
            vec![0.4, 0.4, 0.2],
            vec![0.2, 0.4, 0.4],
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ])
        .unwrap();
        let (best, p) = m.argmax_successor(CellId::new(0), None).unwrap();
        assert_eq!(best, CellId::new(0));
        assert!((p - 0.4).abs() < 1e-12);
        // Excluding the winner moves to the next-lowest tied index.
        let (second, _) = m
            .argmax_successor(CellId::new(0), Some(CellId::new(0)))
            .unwrap();
        assert_eq!(second, CellId::new(1));
    }

    #[test]
    fn argmax_successor_none_when_all_excluded() {
        let m = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.0, 1.0]]).unwrap();
        assert!(m
            .argmax_successor(CellId::new(0), Some(CellId::new(1)))
            .is_none());
    }

    #[test]
    fn extrema_constants_match_paper_definitions() {
        let m = two_state();
        assert_eq!(m.max_prob(), 0.75);
        assert_eq!(m.min_positive_prob(), Some(0.25));
        // p2(x0) = 0.5 (ties), p2(x1) = 0.25 -> p2 = 0.25.
        assert_eq!(m.second_max_in_row(CellId::new(0)), 0.5);
        assert_eq!(m.second_max_in_row(CellId::new(1)), 0.25);
        assert_eq!(m.p2(), 0.25);
    }

    #[test]
    fn irreducibility_detects_disconnection() {
        let m = TransitionMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(!m.is_irreducible());
        assert!(two_state().is_irreducible());
    }

    #[test]
    fn aperiodicity_detects_two_cycle() {
        let swap = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(swap.is_irreducible());
        assert!(!swap.is_aperiodic());
        assert!(!swap.is_ergodic());
        assert!(two_state().is_ergodic());
    }

    #[test]
    fn three_cycle_is_periodic() {
        let m = TransitionMatrix::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        assert!(!m.is_aperiodic());
    }

    #[test]
    fn apply_left_preserves_mass() {
        let m = two_state();
        let d = vec![0.3, 0.7];
        let mut out = vec![0.0; 2];
        m.apply_left(&d, &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // d P = [0.3*0.5 + 0.7*0.25, 0.3*0.5 + 0.7*0.75]
        assert!((out[0] - 0.325).abs() < 1e-12);
        assert!((out[1] - 0.675).abs() < 1e-12);
    }

    #[test]
    fn uniform_and_identity_fixtures() {
        let u = TransitionMatrix::uniform(4).unwrap();
        assert!((u.prob(CellId::new(2), CellId::new(3)) - 0.25).abs() < 1e-12);
        assert!(u.is_ergodic());
        let i = TransitionMatrix::identity(3).unwrap();
        assert_eq!(i.prob(CellId::new(1), CellId::new(1)), 1.0);
        assert!(!i.is_irreducible());
    }
}

//! Entropy and divergence measures for mobility models.
//!
//! The paper uses two skewness measures (Sec. VII-A1): spatial skewness is
//! read off the steady-state distribution, and temporal skewness is the
//! *average Kullback–Leibler distance between different rows of the
//! transition matrix* (reported as 0.44 / 0.34 / 8.18 / 8.48 for models
//! a–d). The entropy rate `H(X_t | X_{t-1})` appears in the
//! information-theoretic interpretation of Theorem V.4: the chaff defeats
//! tracking when the user's conditional entropy exceeds the chaff's.

use crate::{CellId, StateDistribution, TransitionMatrix};

/// Shannon entropy (nats) of transition row `from`:
/// `H(X_t | X_{t-1} = from)`.
pub fn row_entropy(matrix: &TransitionMatrix, from: CellId) -> f64 {
    -matrix
        .successors(from)
        .map(|(_, p)| p * p.ln())
        .sum::<f64>()
}

/// Entropy rate `H(X_t | X_{t-1}) = Σ_x π(x) H(row x)` in nats.
///
/// # Panics
///
/// Panics (debug assertion) if the distribution length does not match the
/// matrix dimension.
pub fn entropy_rate(matrix: &TransitionMatrix, stationary: &StateDistribution) -> f64 {
    debug_assert_eq!(matrix.num_states(), stationary.num_states());
    (0..matrix.num_states())
        .map(|i| {
            let cell = CellId::new(i);
            stationary.prob(cell) * row_entropy(matrix, cell)
        })
        .sum()
}

/// Kullback–Leibler divergence `D(p ‖ q)` in nats.
///
/// Returns `+inf` when `p` puts mass where `q` does not; `NaN`-free for
/// valid probability vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "KL divergence requires equal lengths");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi > 0.0 {
                acc += pi * (pi / qi).ln();
            } else {
                return f64::INFINITY;
            }
        }
    }
    acc
}

/// Average KL divergence over ordered pairs of *different* rows — the
/// paper's temporal-skewness measure.
///
/// Returns 0 for a one-state chain and `+inf` if any pair of rows has
/// disjoint support in the divergent direction.
pub fn avg_pairwise_row_kl(matrix: &TransitionMatrix) -> f64 {
    let n = matrix.num_states();
    if n < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            acc += kl_divergence(matrix.row(CellId::new(i)), matrix.row(CellId::new(j)));
            pairs += 1;
        }
    }
    acc / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitionMatrix;

    #[test]
    fn deterministic_row_has_zero_entropy() {
        let m = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.5, 0.5]]).unwrap();
        assert_eq!(row_entropy(&m, CellId::new(0)), 0.0);
        assert!((row_entropy(&m, CellId::new(1)) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn uniform_matrix_entropy_rate_is_log_n() {
        let m = TransitionMatrix::uniform(8).unwrap();
        let pi = crate::stationary::stationary(&m).unwrap();
        assert!((entropy_rate(&m, &pi) - (8.0f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn kl_is_zero_iff_equal() {
        let p = [0.3, 0.7];
        assert_eq!(kl_divergence(&p, &p), 0.0);
        let q = [0.5, 0.5];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_infinite_on_support_mismatch() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert_eq!(kl_divergence(&p, &q), f64::INFINITY);
        // The reverse direction is finite.
        assert!(kl_divergence(&q, &p).is_finite());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn kl_panics_on_length_mismatch() {
        kl_divergence(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn identical_rows_have_zero_avg_kl() {
        let m = TransitionMatrix::uniform(5).unwrap();
        assert_eq!(avg_pairwise_row_kl(&m), 0.0);
    }

    #[test]
    fn skewed_rows_have_positive_avg_kl() {
        let m = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        let kl = avg_pairwise_row_kl(&m);
        // KL([0.9,0.1] || [0.1,0.9]) = 0.8 * ln 9 in both directions.
        let expected = 0.8 * (9.0f64).ln();
        assert!((kl - expected).abs() < 1e-12);
    }

    #[test]
    fn single_state_avg_kl_is_zero() {
        let m = TransitionMatrix::from_rows(vec![vec![1.0]]).unwrap();
        assert_eq!(avg_pairwise_row_kl(&m), 0.0);
    }
}

//! Compact columnar trajectory storage for fleet-scale populations.
//!
//! A fleet of `N = 10⁵–10⁶` users cannot afford one heap allocation per
//! trajectory: a `Vec<Trajectory>` costs 24 bytes of `Vec` header plus
//! an allocation per service on top of the cells themselves. The two
//! arena types here store *all* cells of a uniform-horizon population in
//! one contiguous `Vec<CellId>` (4 bytes per cell) plus `O(1)` shape
//! metadata:
//!
//! * [`CellGrid`] — **slot-major** (`cells[t * N + i]`): one row per
//!   time slot. This is the eavesdropper's natural view (everything
//!   observed during slot `t` is contiguous) and exactly the access
//!   order of the streaming prefix detectors in `chaff-core`, which
//!   advance every trajectory's running score one row at a time.
//! * [`TrajectoryArena`] — **trajectory-major** (`cells[i * T + t]`):
//!   one row per trajectory. This is the generator's natural view (a
//!   simulation worker emits one user's cells slot by slot) and the
//!   layout for per-user ground truth.
//!
//! Memory math: at `N = 10⁵` users with budget `B = 2` and `T = 24`
//! slots, the observed population is `3·10⁵` services × 24 cells ×
//! 4 bytes ≈ 29 MB in one allocation; the same population as
//! `Vec<Trajectory>` with 8-byte cells costs ≈ 65 MB spread over
//! 300,001 allocations. At `N = 10⁶` the columnar grid is ≈ 288 MB —
//! still a single allocation.
//!
//! # Byte stability
//!
//! Both arenas expose their backing cells via `as_cells`, and the layout
//! is a **stable contract** relied on by `chaff-store`'s on-disk format:
//! a [`CellGrid`] is exactly its slot-major rows in slot order
//! (`cells[t * N + i]`), a [`TrajectoryArena`] exactly its
//! trajectory-major rows in trajectory order (`cells[i * T + t]`), with
//! no padding, headers or interleaved metadata. Each cell is one
//! [`CellId`] (a `u32` index). Reordering either layout is a format
//! break and must bump the store's on-disk version.

use crate::{CellId, MarkovError, Trajectory};

/// Slot-major columnar trajectory store: `cells[t * N + i]` is the cell
/// of trajectory `i` at slot `t`.
///
/// All trajectories share one horizon (uniform-length populations are
/// the fleet invariant; ragged inputs are rejected at construction).
///
/// # Example
///
/// ```
/// use chaff_markov::{CellGrid, Trajectory};
///
/// # fn main() -> Result<(), chaff_markov::MarkovError> {
/// let grid = CellGrid::from_trajectories(&[
///     Trajectory::from_indices([0, 1, 2]),
///     Trajectory::from_indices([5, 5, 5]),
/// ])?;
/// assert_eq!(grid.num_trajectories(), 2);
/// assert_eq!(grid.horizon(), 3);
/// assert_eq!(grid.cell(1, 0).index(), 1);
/// assert_eq!(grid.row(2), &[2usize.into(), 5usize.into()]);
/// assert_eq!(grid.trajectory(1), Trajectory::from_indices([5, 5, 5]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellGrid {
    /// Slot-major cells: row `t` occupies `cells[t * n..(t + 1) * n]`.
    cells: Vec<CellId>,
    /// Number of trajectories `N` (columns).
    num_trajectories: usize,
    /// Number of slots `T` (rows).
    horizon: usize,
}

impl CellGrid {
    /// An empty grid over `num_trajectories` columns and no slots yet;
    /// grow it row by row with [`push_row`](CellGrid::push_row).
    pub fn new(num_trajectories: usize) -> Self {
        CellGrid {
            cells: Vec::new(),
            num_trajectories,
            horizon: 0,
        }
    }

    /// A zero-filled `num_trajectories × horizon` grid, for writers that
    /// scatter cells with [`set`](CellGrid::set) (e.g. per-shard fleet
    /// generation workers).
    ///
    /// # Panics
    ///
    /// Panics if `num_trajectories × horizon` overflows `usize` (callers
    /// sizing grids from untrusted inputs should pre-check, as
    /// `chaff-sim`'s fleet layout does; a wrapped product would
    /// otherwise allocate a too-small arena in release builds).
    pub fn with_horizon(num_trajectories: usize, horizon: usize) -> Self {
        let len = num_trajectories
            .checked_mul(horizon)
            .expect("cell count overflows usize");
        CellGrid {
            cells: vec![CellId::new(0); len],
            num_trajectories,
            horizon,
        }
    }

    /// Builds a grid from per-trajectory cell sequences.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when the trajectories
    /// do not share one length.
    pub fn from_trajectories(trajectories: &[Trajectory]) -> crate::Result<Self> {
        let horizon = trajectories.first().map_or(0, Trajectory::len);
        let n = trajectories.len();
        let mut cells = vec![CellId::new(0); n * horizon];
        for (i, x) in trajectories.iter().enumerate() {
            if x.len() != horizon {
                return Err(MarkovError::DimensionMismatch {
                    expected: horizon,
                    found: x.len(),
                });
            }
            for (t, cell) in x.iter().enumerate() {
                cells[t * n + i] = cell;
            }
        }
        Ok(CellGrid {
            cells,
            num_trajectories: n,
            horizon,
        })
    }

    /// Number of trajectories `N` (columns).
    #[inline]
    pub fn num_trajectories(&self) -> usize {
        self.num_trajectories
    }

    /// Number of slots `T` (rows).
    #[inline]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Whether the grid holds no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell of trajectory `i` at slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= horizon()` or `i >= num_trajectories()`.
    #[inline]
    pub fn cell(&self, t: usize, i: usize) -> CellId {
        assert!(i < self.num_trajectories, "trajectory index out of range");
        self.cells[t * self.num_trajectories + i]
    }

    /// Writes the cell of trajectory `i` at slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= horizon()` or `i >= num_trajectories()`.
    #[inline]
    pub fn set(&mut self, t: usize, i: usize, cell: CellId) {
        assert!(i < self.num_trajectories, "trajectory index out of range");
        self.cells[t * self.num_trajectories + i] = cell;
    }

    /// All `N` cells observed during slot `t`, in trajectory order.
    ///
    /// # Panics
    ///
    /// Panics if `t >= horizon()`.
    #[inline]
    pub fn row(&self, t: usize) -> &[CellId] {
        &self.cells[t * self.num_trajectories..(t + 1) * self.num_trajectories]
    }

    /// Appends one slot's cells (one per trajectory) — the streaming
    /// fill used by capacity-constrained replay.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `row` does not
    /// hold exactly one cell per trajectory.
    pub fn push_row(&mut self, row: &[CellId]) -> crate::Result<()> {
        if row.len() != self.num_trajectories {
            return Err(MarkovError::DimensionMismatch {
                expected: self.num_trajectories,
                found: row.len(),
            });
        }
        self.cells.extend_from_slice(row);
        self.horizon += 1;
        Ok(())
    }

    /// Copies trajectory `i` out of the grid (a strided gather; prefer
    /// [`row`](CellGrid::row) on hot paths).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_trajectories()`.
    pub fn trajectory(&self, i: usize) -> Trajectory {
        assert!(i < self.num_trajectories, "trajectory index out of range");
        (0..self.horizon).map(|t| self.cell(t, i)).collect()
    }

    /// Expands the grid into one [`Trajectory`] per column — the bridge
    /// back to the legacy per-trajectory representation (tests, small
    /// populations, the paper-scale detectors).
    pub fn to_trajectories(&self) -> Vec<Trajectory> {
        let mut out = vec![Trajectory::with_capacity(self.horizon); self.num_trajectories];
        for t in 0..self.horizon {
            for (x, &cell) in out.iter_mut().zip(self.row(t)) {
                x.push(cell);
            }
        }
        out
    }

    /// Bytes spent on cell storage (`N × T × 4`); shape metadata is
    /// `O(1)` on top.
    pub fn cell_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<CellId>()
    }

    /// The backing cells, slot-major: `as_cells()[t * N + i]` is the
    /// cell of trajectory `i` at slot `t`. This layout is a stable
    /// serialization contract (see the module-level *Byte stability*
    /// section) — persisted grids round-trip bit for bit through it.
    #[inline]
    pub fn as_cells(&self) -> &[CellId] {
        &self.cells
    }
}

/// Trajectory-major contiguous arena: `cells[i * T + t]` is the cell of
/// trajectory `i` at slot `t`.
///
/// The generator-side dual of [`CellGrid`]: one simulation worker owns a
/// contiguous range of rows and fills each row slot by slot — no
/// per-trajectory allocation, no false sharing across workers.
///
/// # Example
///
/// ```
/// use chaff_markov::{CellId, Trajectory, TrajectoryArena};
///
/// let mut arena = TrajectoryArena::new(2, 3);
/// arena.row_mut(1).copy_from_slice(&[CellId::new(4), CellId::new(5), CellId::new(6)]);
/// assert_eq!(arena.trajectory(1), Trajectory::from_indices([4, 5, 6]));
/// assert_eq!(arena.row(0), &[CellId::new(0); 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryArena {
    /// Trajectory-major cells: row `i` occupies `cells[i * T..(i + 1) * T]`.
    cells: Vec<CellId>,
    /// Number of trajectories (rows) — stored explicitly so a
    /// zero-horizon arena still reports the row count it was built with.
    num_trajectories: usize,
    /// Number of slots `T` per trajectory.
    horizon: usize,
}

impl TrajectoryArena {
    /// A zero-filled arena of `num_trajectories` rows × `horizon` slots.
    ///
    /// # Panics
    ///
    /// Panics if `num_trajectories × horizon` overflows `usize` (see
    /// [`CellGrid::with_horizon`]).
    pub fn new(num_trajectories: usize, horizon: usize) -> Self {
        let len = num_trajectories
            .checked_mul(horizon)
            .expect("cell count overflows usize");
        TrajectoryArena {
            cells: vec![CellId::new(0); len],
            num_trajectories,
            horizon,
        }
    }

    /// Number of trajectories (rows).
    #[inline]
    pub fn num_trajectories(&self) -> usize {
        self.num_trajectories
    }

    /// Number of slots `T` per trajectory.
    #[inline]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Trajectory `i`'s cells, contiguous.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_trajectories()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[CellId] {
        assert!(i < self.num_trajectories, "trajectory index out of range");
        &self.cells[i * self.horizon..(i + 1) * self.horizon]
    }

    /// Mutable access to trajectory `i`'s cells.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_trajectories()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [CellId] {
        assert!(i < self.num_trajectories, "trajectory index out of range");
        &mut self.cells[i * self.horizon..(i + 1) * self.horizon]
    }

    /// Copies trajectory `i` out of the arena.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_trajectories()`.
    pub fn trajectory(&self, i: usize) -> Trajectory {
        self.row(i).iter().copied().collect()
    }

    /// Splits the arena into disjoint chunks of (up to) `rows` whole
    /// trajectories each, for concurrent fills (one chunk per worker).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` while the arena is non-empty.
    pub fn chunks_of_rows_mut(&mut self, rows: usize) -> Vec<ArenaRowsMut<'_>> {
        let horizon = self.horizon;
        if self.cells.is_empty() {
            return Vec::new();
        }
        self.cells
            .chunks_mut(rows * horizon.max(1))
            .map(|cells| ArenaRowsMut { cells, horizon })
            .collect()
    }

    /// Bytes spent on cell storage (`N × T × 4`).
    pub fn cell_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<CellId>()
    }

    /// The backing cells, trajectory-major: `as_cells()[i * T + t]` is
    /// the cell of trajectory `i` at slot `t` — the stable
    /// serialization contract dual to [`CellGrid::as_cells`].
    #[inline]
    pub fn as_cells(&self) -> &[CellId] {
        &self.cells
    }
}

/// A worker's exclusive window onto a contiguous run of
/// [`TrajectoryArena`] rows (see
/// [`chunks_of_rows_mut`](TrajectoryArena::chunks_of_rows_mut)).
#[derive(Debug)]
pub struct ArenaRowsMut<'a> {
    cells: &'a mut [CellId],
    horizon: usize,
}

impl ArenaRowsMut<'_> {
    /// Number of whole trajectories in this window.
    pub fn num_rows(&self) -> usize {
        self.cells.len().checked_div(self.horizon).unwrap_or(0)
    }

    /// Mutable access to the window-local trajectory `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [CellId] {
        &mut self.cells[i * self.horizon..(i + 1) * self.horizon]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_trajectories_round_trips() {
        let xs = vec![
            Trajectory::from_indices([0, 1, 2, 3]),
            Trajectory::from_indices([9, 8, 7, 6]),
            Trajectory::from_indices([4, 4, 4, 4]),
        ];
        let grid = CellGrid::from_trajectories(&xs).unwrap();
        assert_eq!(grid.num_trajectories(), 3);
        assert_eq!(grid.horizon(), 4);
        assert_eq!(grid.to_trajectories(), xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(&grid.trajectory(i), x);
        }
    }

    #[test]
    fn rows_are_slot_major() {
        let grid = CellGrid::from_trajectories(&[
            Trajectory::from_indices([0, 1]),
            Trajectory::from_indices([2, 3]),
        ])
        .unwrap();
        assert_eq!(grid.row(0), &[CellId::new(0), CellId::new(2)]);
        assert_eq!(grid.row(1), &[CellId::new(1), CellId::new(3)]);
    }

    #[test]
    fn ragged_trajectories_are_rejected() {
        let err = CellGrid::from_trajectories(&[
            Trajectory::from_indices([0, 1]),
            Trajectory::from_indices([0]),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MarkovError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn push_row_streams_slots() {
        let mut grid = CellGrid::new(2);
        grid.push_row(&[CellId::new(1), CellId::new(2)]).unwrap();
        grid.push_row(&[CellId::new(3), CellId::new(4)]).unwrap();
        assert_eq!(grid.horizon(), 2);
        assert_eq!(grid.trajectory(0), Trajectory::from_indices([1, 3]));
        // Wrong arity is a typed, recoverable error.
        let err = grid.push_row(&[CellId::new(0)]).unwrap_err();
        assert!(matches!(err, MarkovError::DimensionMismatch { .. }));
        assert_eq!(grid.horizon(), 2);
    }

    #[test]
    fn set_and_cell_are_inverses() {
        let mut grid = CellGrid::with_horizon(3, 2);
        grid.set(1, 2, CellId::new(7));
        assert_eq!(grid.cell(1, 2), CellId::new(7));
        assert_eq!(grid.cell(0, 2), CellId::new(0));
    }

    #[test]
    fn cell_bytes_are_four_per_cell_plus_constant_shape() {
        let grid = CellGrid::with_horizon(100, 7);
        assert_eq!(grid.cell_bytes(), 100 * 7 * 4);
        let arena = TrajectoryArena::new(100, 7);
        assert_eq!(arena.cell_bytes(), 100 * 7 * 4);
    }

    #[test]
    fn arena_rows_are_contiguous_and_chunkable() {
        let mut arena = TrajectoryArena::new(5, 3);
        {
            let mut chunks = arena.chunks_of_rows_mut(2);
            assert_eq!(chunks.len(), 3); // 2 + 2 + 1 rows
            assert_eq!(chunks[0].num_rows(), 2);
            assert_eq!(chunks[2].num_rows(), 1);
            for (w, chunk) in chunks.iter_mut().enumerate() {
                for j in 0..chunk.num_rows() {
                    let row = chunk.row_mut(j);
                    for (t, cell) in row.iter_mut().enumerate() {
                        *cell = CellId::new(w * 10 + j * 3 + t);
                    }
                }
            }
        }
        assert_eq!(arena.trajectory(0), Trajectory::from_indices([0, 1, 2]));
        assert_eq!(arena.trajectory(3), Trajectory::from_indices([13, 14, 15]));
        assert_eq!(arena.trajectory(4), Trajectory::from_indices([20, 21, 22]));
        assert_eq!(arena.num_trajectories(), 5);
    }

    #[test]
    fn as_cells_exposes_the_documented_layouts() {
        let grid = CellGrid::from_trajectories(&[
            Trajectory::from_indices([0, 1]),
            Trajectory::from_indices([2, 3]),
        ])
        .unwrap();
        // Slot-major: slot 0's cells first, then slot 1's.
        assert_eq!(
            grid.as_cells(),
            &[
                CellId::new(0),
                CellId::new(2),
                CellId::new(1),
                CellId::new(3)
            ]
        );
        let mut arena = TrajectoryArena::new(2, 2);
        arena
            .row_mut(1)
            .copy_from_slice(&[CellId::new(4), CellId::new(5)]);
        // Trajectory-major: trajectory 0's cells first, then 1's.
        assert_eq!(
            arena.as_cells(),
            &[
                CellId::new(0),
                CellId::new(0),
                CellId::new(4),
                CellId::new(5)
            ]
        );
    }

    #[test]
    fn empty_shapes_behave() {
        let grid = CellGrid::new(0);
        assert!(grid.is_empty());
        assert_eq!(grid.to_trajectories(), Vec::<Trajectory>::new());
        let mut arena = TrajectoryArena::new(0, 5);
        assert_eq!(arena.num_trajectories(), 0);
        assert!(arena.chunks_of_rows_mut(4).is_empty());
    }
}

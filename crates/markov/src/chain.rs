//! The Markov mobility model: a transition matrix plus initial
//! distribution, with trajectory sampling and likelihood evaluation.

use crate::{CellId, Result, StateDistribution, Trajectory, TransitionMatrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Markov mobility model: a transition matrix bundled with the initial
/// distribution used for the first slot.
///
/// The paper draws the first location from the steady-state distribution
/// `π` and each subsequent location from the transition matrix `P`
/// (Sec. II-C); the trajectory likelihood used by the ML detector (eq. 1) is
/// `π(x_1) ∏ P(x_t | x_{t-1})`. For trace-driven models the empirical
/// occupancy plays the role of `π`.
///
/// # Example
///
/// ```
/// use chaff_markov::{MarkovChain, TransitionMatrix};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), chaff_markov::MarkovError> {
/// let matrix = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.3, 0.7]])?;
/// let chain = MarkovChain::new(matrix)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = chain.sample_trajectory(50, &mut rng);
/// assert!(chain.log_likelihood(&x) < 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain {
    matrix: TransitionMatrix,
    initial: StateDistribution,
}

impl MarkovChain {
    /// Builds a chain whose initial distribution is the stationary
    /// distribution of `matrix` (computed by power iteration).
    ///
    /// # Errors
    ///
    /// Propagates stationary-solver errors (e.g. no convergence for
    /// periodic chains).
    pub fn new(matrix: TransitionMatrix) -> Result<Self> {
        let initial = crate::stationary::stationary(&matrix)?;
        Ok(MarkovChain { matrix, initial })
    }

    /// Builds a chain with an explicit initial distribution.
    ///
    /// Used for trace-driven models where the empirical occupancy serves as
    /// the steady state.
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error when the distribution and matrix
    /// disagree on the number of cells.
    pub fn with_initial(matrix: TransitionMatrix, initial: StateDistribution) -> Result<Self> {
        if matrix.num_states() != initial.num_states() {
            return Err(crate::MarkovError::DimensionMismatch {
                expected: matrix.num_states(),
                found: initial.num_states(),
            });
        }
        Ok(MarkovChain { matrix, initial })
    }

    /// The transition matrix `P`.
    #[inline]
    pub fn matrix(&self) -> &TransitionMatrix {
        &self.matrix
    }

    /// The initial (steady-state) distribution `π`.
    #[inline]
    pub fn initial(&self) -> &StateDistribution {
        &self.initial
    }

    /// Number of cells in the state space.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.matrix.num_states()
    }

    /// Samples a trajectory of `len` slots, drawing the first cell from the
    /// initial distribution.
    pub fn sample_trajectory<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Trajectory {
        let mut out = Trajectory::with_capacity(len);
        if len == 0 {
            return out;
        }
        let mut current = self.initial.sample(rng);
        out.push(current);
        for _ in 1..len {
            current = self.step(current, rng);
            out.push(current);
        }
        out
    }

    /// Samples a trajectory of `len` slots starting from a fixed cell.
    pub fn sample_trajectory_from<R: Rng + ?Sized>(
        &self,
        start: CellId,
        len: usize,
        rng: &mut R,
    ) -> Trajectory {
        let mut out = Trajectory::with_capacity(len);
        if len == 0 {
            return out;
        }
        out.push(start);
        let mut current = start;
        for _ in 1..len {
            current = self.step(current, rng);
            out.push(current);
        }
        out
    }

    /// Samples the next cell from `current`.
    pub fn step<R: Rng + ?Sized>(&self, current: CellId, rng: &mut R) -> CellId {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        let mut last = current;
        for (cell, p) in self.matrix.successors(current) {
            acc += p;
            last = cell;
            if u < acc {
                return cell;
            }
        }
        // Floating-point slack: the last positive-probability successor.
        last
    }

    /// Log-likelihood of a trajectory under this model:
    /// `log π(x_1) + Σ_{t≥2} log P(x_t | x_{t-1})` (the log of eq. 1's
    /// objective). `-inf` if any step has zero probability.
    ///
    /// Returns 0 for the empty trajectory.
    pub fn log_likelihood(&self, trajectory: &Trajectory) -> f64 {
        self.prefix_log_likelihoods(trajectory)
            .last()
            .copied()
            .unwrap_or(0.0)
    }

    /// Per-slot increments of the log-likelihood: element 0 is
    /// `log π(x_1)` and element `t` is `log P(x_{t+1} | x_t)`.
    pub fn step_log_likelihoods(&self, trajectory: &Trajectory) -> Vec<f64> {
        let mut out = Vec::with_capacity(trajectory.len());
        let mut prev: Option<CellId> = None;
        for cell in trajectory.iter() {
            let inc = match prev {
                None => self.initial.log_prob(cell),
                Some(p) => self.matrix.log_prob(p, cell),
            };
            out.push(inc);
            prev = Some(cell);
        }
        out
    }

    /// Cumulative log-likelihood after each slot: element `t` is the
    /// log-likelihood of the prefix `x_1..x_{t+1}`.
    ///
    /// This powers the prefix (online) ML detection used to plot tracking
    /// accuracy as a function of time.
    pub fn prefix_log_likelihoods(&self, trajectory: &Trajectory) -> Vec<f64> {
        let mut acc = 0.0;
        self.step_log_likelihoods(trajectory)
            .into_iter()
            .map(|inc| {
                acc += inc;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarkovError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> MarkovChain {
        let m = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.3, 0.7]]).unwrap();
        MarkovChain::new(m).unwrap()
    }

    #[test]
    fn with_initial_checks_dimensions() {
        let m = TransitionMatrix::uniform(3).unwrap();
        let d = StateDistribution::uniform(2).unwrap();
        assert!(matches!(
            MarkovChain::with_initial(m, d),
            Err(MarkovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn sampled_trajectories_have_requested_length() {
        let c = chain();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(c.sample_trajectory(0, &mut rng).len(), 0);
        assert_eq!(c.sample_trajectory(17, &mut rng).len(), 17);
        let from = c.sample_trajectory_from(CellId::new(1), 5, &mut rng);
        assert_eq!(from.cell(0), CellId::new(1));
        assert_eq!(from.len(), 5);
    }

    #[test]
    fn log_likelihood_matches_manual_computation() {
        let c = chain();
        let x = Trajectory::from_indices([0, 0, 1]);
        let expected = c.initial().log_prob(CellId::new(0)) + (0.9f64).ln() + (0.1f64).ln();
        assert!((c.log_likelihood(&x) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_step_gives_neg_infinity() {
        let m = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.5, 0.5]]).unwrap();
        let c = MarkovChain::new(m).unwrap();
        let x = Trajectory::from_indices([0, 0]);
        assert_eq!(c.log_likelihood(&x), f64::NEG_INFINITY);
    }

    #[test]
    fn prefix_likelihoods_are_cumulative_steps() {
        let c = chain();
        let x = Trajectory::from_indices([1, 0, 0, 1]);
        let steps = c.step_log_likelihoods(&x);
        let prefixes = c.prefix_log_likelihoods(&x);
        assert_eq!(steps.len(), 4);
        let mut acc = 0.0;
        for (s, p) in steps.iter().zip(&prefixes) {
            acc += s;
            assert!((acc - p).abs() < 1e-12);
        }
        assert!((c.log_likelihood(&x) - prefixes[3]).abs() < 1e-12);
    }

    #[test]
    fn empirical_transition_frequencies_match_matrix() {
        let c = chain();
        let mut rng = StdRng::seed_from_u64(99);
        let x = c.sample_trajectory(200_000, &mut rng);
        let mut n00 = 0usize;
        let mut n0 = 0usize;
        for w in x.as_slice().windows(2) {
            if w[0] == CellId::new(0) {
                n0 += 1;
                if w[1] == CellId::new(0) {
                    n00 += 1;
                }
            }
        }
        let freq = n00 as f64 / n0 as f64;
        assert!((freq - 0.9).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn step_only_moves_along_support() {
        let m = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = MarkovChain::with_initial(m, StateDistribution::uniform(2).unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let x = c.sample_trajectory_from(CellId::new(0), 10, &mut rng);
        for (t, cell) in x.iter().enumerate() {
            assert_eq!(cell.index(), t % 2);
        }
    }
}

//! Error type shared by every fallible operation in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or analyzing Markov chains.
///
/// Every fallible operation in this crate returns this type; it implements
/// [`std::error::Error`] so it composes with downstream error handling.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// A matrix or distribution with zero states was supplied.
    Empty,
    /// A matrix was not square: `rows * rows != data_len`.
    NotSquare {
        /// Number of rows implied by the constructor call.
        rows: usize,
        /// Total number of entries supplied.
        data_len: usize,
    },
    /// A row of a transition matrix does not sum to one.
    RowNotStochastic {
        /// Index of the offending row.
        row: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// A probability entry was negative or non-finite.
    InvalidProbability {
        /// Row of the offending entry (0 for distributions).
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// A distribution does not sum to one.
    NotNormalized {
        /// The actual sum of the distribution.
        sum: f64,
    },
    /// Two objects that must share a state space do not.
    DimensionMismatch {
        /// Number of states expected.
        expected: usize,
        /// Number of states found.
        found: usize,
    },
    /// The chain is not ergodic (irreducible and aperiodic), so the requested
    /// quantity (e.g. a unique stationary distribution) is undefined.
    NotErgodic,
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A cell index was out of the state-space range.
    CellOutOfRange {
        /// The offending cell index.
        cell: usize,
        /// Number of states in the space.
        states: usize,
    },
    /// A dense cell index does not fit the compact `u32` representation
    /// of [`CellId`](crate::CellId).
    CellIndexOverflow {
        /// The offending index.
        index: usize,
    },
    /// A mobility-class label was out of a registry's class range.
    ClassOutOfRange {
        /// The offending class label.
        class: usize,
        /// Number of classes in the registry.
        classes: usize,
    },
    /// Two sequences that must have equal lengths do not (ragged
    /// trajectory batches, or observation rows whose arity disagrees
    /// with the accumulator block they advance).
    LengthMismatch {
        /// The required length.
        expected: usize,
        /// The offending length.
        found: usize,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::Empty => write!(f, "state space is empty"),
            MarkovError::NotSquare { rows, data_len } => {
                write!(f, "matrix with {rows} rows cannot hold {data_len} entries")
            }
            MarkovError::RowNotStochastic { row, sum } => {
                write!(f, "row {row} sums to {sum}, expected 1")
            }
            MarkovError::InvalidProbability { row, col, value } => {
                write!(f, "invalid probability {value} at ({row}, {col})")
            }
            MarkovError::NotNormalized { sum } => {
                write!(f, "distribution sums to {sum}, expected 1")
            }
            MarkovError::DimensionMismatch { expected, found } => {
                write!(f, "expected {expected} states, found {found}")
            }
            MarkovError::NotErgodic => write!(f, "chain is not ergodic"),
            MarkovError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            MarkovError::CellOutOfRange { cell, states } => {
                write!(f, "cell {cell} out of range for {states} states")
            }
            MarkovError::CellIndexOverflow { index } => {
                write!(f, "cell index {index} exceeds the u32 cell-id range")
            }
            MarkovError::ClassOutOfRange { class, classes } => {
                write!(
                    f,
                    "class {class} out of range for {classes} mobility classes"
                )
            }
            MarkovError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "sequence length {found} differs from expected {expected}"
                )
            }
        }
    }
}

impl Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = MarkovError::RowNotStochastic { row: 3, sum: 0.5 };
        let msg = err.to_string();
        assert!(msg.contains("row 3"));
        assert!(msg.contains("0.5"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MarkovError>();
    }
}

//! Probability distributions over cells: validation, sampling, total
//! variation and collision probability.

use crate::{CellId, MarkovError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tolerance used when checking that a distribution sums to one.
const SUM_TOLERANCE: f64 = 1e-6;

/// A validated probability distribution over the cell space.
///
/// Used both for initial distributions and for stationary distributions
/// (the paper's `π`). Provides the aggregate quantities the analysis needs:
/// the collision probability `Σ_x π(x)²` of eq. (11), the largest and
/// second-largest masses (`π_max`, `π_2` of Theorem V.4), entropy, and
/// deterministic-tie-break argmax selection for the greedy strategies.
///
/// # Example
///
/// ```
/// use chaff_markov::StateDistribution;
///
/// # fn main() -> Result<(), chaff_markov::MarkovError> {
/// let d = StateDistribution::from_vec(vec![0.2, 0.5, 0.3])?;
/// assert_eq!(d.argmax(None).index(), 1);
/// assert!((d.collision_probability() - (0.04 + 0.25 + 0.09)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDistribution {
    probs: Vec<f64>,
}

impl StateDistribution {
    /// Builds a distribution from a probability vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector is empty, contains negative or
    /// non-finite entries, or does not sum to one within `1e-6`.
    pub fn from_vec(probs: Vec<f64>) -> Result<Self> {
        if probs.is_empty() {
            return Err(MarkovError::Empty);
        }
        let mut sum = 0.0;
        for (j, &p) in probs.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(MarkovError::InvalidProbability {
                    row: 0,
                    col: j,
                    value: p,
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > SUM_TOLERANCE {
            return Err(MarkovError::NotNormalized { sum });
        }
        Ok(StateDistribution { probs })
    }

    /// Builds a distribution by normalizing non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector is empty, has invalid entries, or
    /// sums to zero.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(MarkovError::Empty);
        }
        let mut sum = 0.0;
        for (j, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(MarkovError::InvalidProbability {
                    row: 0,
                    col: j,
                    value: w,
                });
            }
            sum += w;
        }
        if sum <= 0.0 {
            return Err(MarkovError::NotNormalized { sum });
        }
        Self::from_vec(weights.into_iter().map(|w| w / sum).collect())
    }

    /// The uniform distribution over `n` cells.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        Ok(StateDistribution {
            probs: vec![1.0 / n as f64; n],
        })
    }

    /// A point mass on `cell` over `n` cells.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `cell` is out of range.
    pub fn point_mass(n: usize, cell: CellId) -> Result<Self> {
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        if cell.index() >= n {
            return Err(MarkovError::CellOutOfRange {
                cell: cell.index(),
                states: n,
            });
        }
        let mut probs = vec![0.0; n];
        probs[cell.index()] = 1.0;
        Ok(StateDistribution { probs })
    }

    /// Number of cells in the space.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.probs.len()
    }

    /// Probability mass at `cell`.
    #[inline]
    pub fn prob(&self, cell: CellId) -> f64 {
        self.probs[cell.index()]
    }

    /// Natural-log probability; `-inf` when the mass is zero.
    #[inline]
    pub fn log_prob(&self, cell: CellId) -> f64 {
        let p = self.prob(cell);
        if p > 0.0 {
            p.ln()
        } else {
            f64::NEG_INFINITY
        }
    }

    /// The underlying probability slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Most probable cell, excluding `exclude` if given.
    ///
    /// Ties break towards the lowest index (deterministic, known to the
    /// advanced eavesdropper per Sec. VI-A2).
    ///
    /// # Panics
    ///
    /// Panics if the exclusion removes the only cell of a one-cell space.
    pub fn argmax(&self, exclude: Option<CellId>) -> CellId {
        let mut best: Option<(usize, f64)> = None;
        for (j, &p) in self.probs.iter().enumerate() {
            if Some(CellId::new(j)) == exclude {
                continue;
            }
            match best {
                Some((_, bp)) if bp >= p => {}
                _ => best = Some((j, p)),
            }
        }
        CellId::new(best.expect("non-empty distribution after exclusion").0)
    }

    /// Largest mass (the paper's `π_max`).
    pub fn max(&self) -> f64 {
        self.probs.iter().copied().fold(0.0, f64::max)
    }

    /// Second-largest mass (the paper's `π_2`).
    pub fn second_max(&self) -> f64 {
        let mut best = 0.0f64;
        let mut second = 0.0f64;
        for &p in &self.probs {
            if p > best {
                second = best;
                best = p;
            } else if p > second {
                second = p;
            }
        }
        second
    }

    /// The collision probability `Σ_x π(x)²` — the probability that two
    /// independent draws coincide, which drives the IM-strategy accuracy
    /// floor of eq. (11).
    pub fn collision_probability(&self) -> f64 {
        self.probs.iter().map(|p| p * p).sum()
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// Samples one cell.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> CellId {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (j, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return CellId::new(j);
            }
        }
        // Floating-point slack: return the last cell with positive mass.
        let last = self
            .probs
            .iter()
            .rposition(|&p| p > 0.0)
            .expect("distribution has positive mass");
        CellId::new(last)
    }

    /// Total variation distance to another distribution.
    ///
    /// # Panics
    ///
    /// Panics if the two distributions have different lengths.
    pub fn total_variation(&self, other: &StateDistribution) -> f64 {
        crate::mixing::total_variation(&self.probs, &other.probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_unnormalized() {
        assert!(matches!(
            StateDistribution::from_vec(vec![0.5, 0.6]).unwrap_err(),
            MarkovError::NotNormalized { .. }
        ));
    }

    #[test]
    fn rejects_empty_and_negative() {
        assert_eq!(
            StateDistribution::from_vec(vec![]).unwrap_err(),
            MarkovError::Empty
        );
        assert!(matches!(
            StateDistribution::from_vec(vec![1.5, -0.5]).unwrap_err(),
            MarkovError::InvalidProbability { .. }
        ));
    }

    #[test]
    fn from_weights_normalizes() {
        let d = StateDistribution::from_weights(vec![1.0, 3.0]).unwrap();
        assert!((d.prob(CellId::new(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn point_mass_checks_range() {
        assert!(StateDistribution::point_mass(3, CellId::new(3)).is_err());
        let d = StateDistribution::point_mass(3, CellId::new(1)).unwrap();
        assert_eq!(d.prob(CellId::new(1)), 1.0);
        assert_eq!(d.log_prob(CellId::new(0)), f64::NEG_INFINITY);
    }

    #[test]
    fn argmax_with_exclusion() {
        let d = StateDistribution::from_vec(vec![0.2, 0.5, 0.3]).unwrap();
        assert_eq!(d.argmax(None), CellId::new(1));
        assert_eq!(d.argmax(Some(CellId::new(1))), CellId::new(2));
    }

    #[test]
    fn argmax_tie_breaks_low() {
        let d = StateDistribution::from_vec(vec![0.4, 0.4, 0.2]).unwrap();
        assert_eq!(d.argmax(None), CellId::new(0));
    }

    #[test]
    fn maxima_and_collision() {
        let d = StateDistribution::from_vec(vec![0.5, 0.3, 0.2]).unwrap();
        assert_eq!(d.max(), 0.5);
        assert_eq!(d.second_max(), 0.3);
        let expected = 0.25 + 0.09 + 0.04;
        assert!((d.collision_probability() - expected).abs() < 1e-12);
    }

    #[test]
    fn uniform_entropy_is_log_n() {
        let d = StateDistribution::uniform(8).unwrap();
        assert!((d.entropy() - (8.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn lemma_v1_collision_at_most_max() {
        // Lemma V.1: sum of squares <= max, equality iff uniform.
        let skewed = StateDistribution::from_vec(vec![0.7, 0.2, 0.1]).unwrap();
        assert!(skewed.collision_probability() <= skewed.max() + 1e-12);
        let uniform = StateDistribution::uniform(5).unwrap();
        assert!((uniform.collision_probability() - uniform.max()).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let d = StateDistribution::from_vec(vec![0.1, 0.9]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| d.sample(&mut rng) == CellId::new(1))
            .count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.9).abs() < 0.02, "freq = {freq}");
    }

    #[test]
    fn sample_handles_point_mass_tail() {
        let d = StateDistribution::point_mass(4, CellId::new(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), CellId::new(2));
        }
    }
}

//! The four synthetic mobility models of the paper's evaluation
//! (Sec. VII-A1, Fig. 4).
//!
//! * **(a) non-skewed** — transition probabilities drawn uniformly at
//!   random and row-normalized; neither spatially nor temporally skewed.
//! * **(b) spatially-skewed** — as (a) but one column ("cell 5" in the
//!   paper, index 4 here) is boosted to weight 2 before normalization, so
//!   every cell is likely to transit into the hot cell.
//! * **(c) temporally-skewed** — a wrapping (ring) random walk with
//!   probability `p = 0.5` of moving right, `q = 0.25` of moving left and
//!   `1 − p − q` of staying; uniform steady state but highly predictable
//!   steps. Transitions between non-adjacent cells get probability
//!   `ε = 1e-5`.
//! * **(d) spatially & temporally skewed** — the same walk without
//!   wrapping (steps beyond the boundary turn into "stay"), which tilts the
//!   steady state geometrically towards the high end.
//!
//! The paper's KL temporal-skewness figures for (a)–(d) are 0.44, 0.34,
//! 8.18 and 8.48; [`ModelKind::build`] reproduces those magnitudes (exact
//! values for (a) and (b) depend on the RNG draw).

use crate::{Result, TransitionMatrix};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Default hot-cell weight used by the spatially-skewed model
/// (the paper sets the j-th column to 2).
pub const DEFAULT_HOT_WEIGHT: f64 = 2.0;

/// Default index of the hot cell (the paper's `j = 5`, 1-indexed).
pub const DEFAULT_HOT_CELL: usize = 4;

/// Default probability of moving right in the random-walk models.
pub const DEFAULT_P_RIGHT: f64 = 0.5;

/// Default probability of moving left in the random-walk models.
pub const DEFAULT_Q_LEFT: f64 = 0.25;

/// Default probability of a jump between non-adjacent cells
/// (the paper's `ε = 1e-5`).
pub const DEFAULT_EPSILON: f64 = 1e-5;

/// Model (a): random transition weights in `[0, 1]`, rows normalized.
///
/// # Errors
///
/// Returns an error if `l == 0`.
pub fn random_dense<R: Rng + ?Sized>(l: usize, rng: &mut R) -> Result<TransitionMatrix> {
    let rows = (0..l)
        .map(|_| (0..l).map(|_| rng.random::<f64>()).collect())
        .collect();
    TransitionMatrix::from_weights(rows)
}

/// Model (b): random weights with column `hot_cell` set to `hot_weight`
/// before normalization, giving every cell a high probability of moving to
/// the hot cell.
///
/// # Errors
///
/// Returns an error if `l == 0` or `hot_cell >= l`.
pub fn spatially_skewed<R: Rng + ?Sized>(
    l: usize,
    hot_cell: usize,
    hot_weight: f64,
    rng: &mut R,
) -> Result<TransitionMatrix> {
    if hot_cell >= l {
        return Err(crate::MarkovError::CellOutOfRange {
            cell: hot_cell,
            states: l,
        });
    }
    let rows = (0..l)
        .map(|_| {
            (0..l)
                .map(|j| {
                    if j == hot_cell {
                        hot_weight
                    } else {
                        rng.random::<f64>()
                    }
                })
                .collect()
        })
        .collect();
    TransitionMatrix::from_weights(rows)
}

/// Model (c): wrapping ring random walk with right/left/stay probabilities
/// `p`, `q`, `1 − p − q` and `epsilon` weight on every non-adjacent cell.
///
/// Has a uniform steady state by symmetry.
///
/// # Errors
///
/// Returns an error if `l == 0`, probabilities are out of range, or
/// `p + q > 1`.
pub fn ring_walk(l: usize, p: f64, q: f64, epsilon: f64) -> Result<TransitionMatrix> {
    walk_weights(l, p, q, epsilon, true).and_then(TransitionMatrix::from_weights)
}

/// Model (d): the same walk without wrapping; moves past a boundary become
/// "stay", which skews the steady state towards the drift direction.
///
/// # Errors
///
/// See [`ring_walk`].
pub fn line_walk(l: usize, p: f64, q: f64, epsilon: f64) -> Result<TransitionMatrix> {
    walk_weights(l, p, q, epsilon, false).and_then(TransitionMatrix::from_weights)
}

fn walk_weights(l: usize, p: f64, q: f64, epsilon: f64, wrap: bool) -> Result<Vec<Vec<f64>>> {
    if l == 0 {
        return Err(crate::MarkovError::Empty);
    }
    for (value, name) in [(p, "p"), (q, "q"), (epsilon, "epsilon")] {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            let _ = name;
            return Err(crate::MarkovError::InvalidProbability {
                row: 0,
                col: 0,
                value,
            });
        }
    }
    if p + q > 1.0 {
        return Err(crate::MarkovError::RowNotStochastic { row: 0, sum: p + q });
    }
    let stay = 1.0 - p - q;
    let mut rows = vec![vec![0.0; l]; l];
    for (i, row) in rows.iter_mut().enumerate() {
        let right = if i + 1 < l {
            Some(i + 1)
        } else if wrap {
            Some(0)
        } else {
            None
        };
        let left = if i > 0 {
            Some(i - 1)
        } else if wrap {
            Some(l - 1)
        } else {
            None
        };
        row[i] += stay;
        match right {
            Some(r) => row[r] += p,
            None => row[i] += p, // step beyond the boundary becomes "stay"
        }
        match left {
            Some(ml) => row[ml] += q,
            None => row[i] += q,
        }
        // The paper gives every remaining (non-adjacent) cell ε weight.
        for w in row.iter_mut() {
            if *w == 0.0 {
                *w = epsilon;
            }
        }
    }
    Ok(rows)
}

/// The four synthetic mobility models of Sec. VII-A1, with the paper's
/// default parameters baked in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Model (a): neither spatially nor temporally skewed.
    NonSkewed,
    /// Model (b): spatially skewed (hot cell 5).
    SpatiallySkewed,
    /// Model (c): temporally skewed (wrapping drift walk).
    TemporallySkewed,
    /// Model (d): spatially and temporally skewed (non-wrapping drift walk).
    SpatioTemporallySkewed,
}

impl ModelKind {
    /// All four models in the paper's (a)–(d) order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::NonSkewed,
        ModelKind::SpatiallySkewed,
        ModelKind::TemporallySkewed,
        ModelKind::SpatioTemporallySkewed,
    ];

    /// Builds the transition matrix with the paper's default parameters.
    ///
    /// Models (a) and (b) consume randomness; (c) and (d) are deterministic
    /// but still take the RNG for a uniform interface.
    ///
    /// # Errors
    ///
    /// Returns an error if `l` is zero (or smaller than the hot-cell index
    /// for model (b)).
    pub fn build<R: Rng + ?Sized>(self, l: usize, rng: &mut R) -> Result<TransitionMatrix> {
        match self {
            ModelKind::NonSkewed => random_dense(l, rng),
            ModelKind::SpatiallySkewed => {
                let hot = DEFAULT_HOT_CELL.min(l.saturating_sub(1));
                spatially_skewed(l, hot, DEFAULT_HOT_WEIGHT, rng)
            }
            ModelKind::TemporallySkewed => {
                ring_walk(l, DEFAULT_P_RIGHT, DEFAULT_Q_LEFT, DEFAULT_EPSILON)
            }
            ModelKind::SpatioTemporallySkewed => {
                line_walk(l, DEFAULT_P_RIGHT, DEFAULT_Q_LEFT, DEFAULT_EPSILON)
            }
        }
    }

    /// The paper's one-letter label: `a`, `b`, `c` or `d`.
    pub fn letter(self) -> char {
        match self {
            ModelKind::NonSkewed => 'a',
            ModelKind::SpatiallySkewed => 'b',
            ModelKind::TemporallySkewed => 'c',
            ModelKind::SpatioTemporallySkewed => 'd',
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelKind::NonSkewed => "non-skewed",
            ModelKind::SpatiallySkewed => "spatially-skewed",
            ModelKind::TemporallySkewed => "temporally-skewed",
            ModelKind::SpatioTemporallySkewed => "spatially&temporally-skewed",
        };
        f.write_str(name)
    }
}

impl FromStr for ModelKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "a" | "non-skewed" | "nonskewed" => Ok(ModelKind::NonSkewed),
            "b" | "spatial" | "spatially-skewed" => Ok(ModelKind::SpatiallySkewed),
            "c" | "temporal" | "temporally-skewed" => Ok(ModelKind::TemporallySkewed),
            "d" | "both" | "spatially&temporally-skewed" | "spatiotemporal" => {
                Ok(ModelKind::SpatioTemporallySkewed)
            }
            other => Err(format!(
                "unknown model '{other}', expected one of a, b, c, d"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::stationary;
    use crate::{entropy, CellId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_models_are_ergodic_stochastic() {
        let mut rng = StdRng::seed_from_u64(11);
        for kind in ModelKind::ALL {
            let m = kind.build(10, &mut rng).unwrap();
            assert_eq!(m.num_states(), 10);
            assert!(m.is_ergodic(), "{kind} not ergodic");
        }
    }

    #[test]
    fn spatially_skewed_concentrates_on_hot_cell() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = ModelKind::SpatiallySkewed.build(10, &mut rng).unwrap();
        let pi = stationary(&m).unwrap();
        let hot = CellId::new(DEFAULT_HOT_CELL);
        // Fig. 4(b): the hot cell carries around 0.3 steady-state mass.
        assert!(pi.prob(hot) > 0.2, "hot mass = {}", pi.prob(hot));
        assert_eq!(pi.argmax(None), hot);
    }

    #[test]
    fn ring_walk_has_uniform_stationary() {
        let m = ring_walk(10, 0.5, 0.25, 1e-5).unwrap();
        let pi = stationary(&m).unwrap();
        for i in 0..10 {
            assert!(
                (pi.prob(CellId::new(i)) - 0.1).abs() < 1e-6,
                "pi[{i}] = {}",
                pi.prob(CellId::new(i))
            );
        }
    }

    #[test]
    fn line_walk_skews_towards_drift() {
        let m = line_walk(10, 0.5, 0.25, 1e-5).unwrap();
        let pi = stationary(&m).unwrap();
        // Fig. 4(d): mass increases towards the high-index end, peaking
        // around 0.45-0.5.
        assert!(pi.prob(CellId::new(9)) > pi.prob(CellId::new(0)));
        assert!(pi.prob(CellId::new(9)) > 0.3);
        // Roughly geometric with ratio p/q = 2 in the bulk.
        let ratio = pi.prob(CellId::new(5)) / pi.prob(CellId::new(4));
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn kl_skewness_reproduces_paper_magnitudes() {
        // Paper (Sec. VII-A1): KL distances 0.44, 0.34, 8.18, 8.48 for
        // models a-d at L = 10. Random models vary with the seed, so check
        // magnitude bands rather than exact values.
        let mut rng = StdRng::seed_from_u64(2024);
        let a = entropy::avg_pairwise_row_kl(&ModelKind::NonSkewed.build(10, &mut rng).unwrap());
        let b =
            entropy::avg_pairwise_row_kl(&ModelKind::SpatiallySkewed.build(10, &mut rng).unwrap());
        let c =
            entropy::avg_pairwise_row_kl(&ModelKind::TemporallySkewed.build(10, &mut rng).unwrap());
        let d = entropy::avg_pairwise_row_kl(
            &ModelKind::SpatioTemporallySkewed
                .build(10, &mut rng)
                .unwrap(),
        );
        assert!((0.2..1.0).contains(&a), "model a KL = {a}");
        assert!((0.1..1.0).contains(&b), "model b KL = {b}");
        assert!(c > 5.0, "model c KL = {c}");
        assert!(d > 5.0, "model d KL = {d}");
        assert!(b < a, "spatial skew lowers row diversity: {b} vs {a}");
    }

    #[test]
    fn walk_rejects_bad_parameters() {
        assert!(ring_walk(0, 0.5, 0.25, 0.0).is_err());
        assert!(ring_walk(5, 0.8, 0.5, 0.0).is_err());
        assert!(ring_walk(5, -0.1, 0.5, 0.0).is_err());
        assert!(line_walk(5, 0.5, 0.25, 1.5).is_err());
    }

    #[test]
    fn spatially_skewed_rejects_out_of_range_hot_cell() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(spatially_skewed(3, 3, 2.0, &mut rng).is_err());
    }

    #[test]
    fn model_kind_parses_letters_and_names() {
        assert_eq!("a".parse::<ModelKind>().unwrap(), ModelKind::NonSkewed);
        assert_eq!(
            "spatially-skewed".parse::<ModelKind>().unwrap(),
            ModelKind::SpatiallySkewed
        );
        assert_eq!("D".parse::<ModelKind>().unwrap().letter(), 'd');
        assert!("x".parse::<ModelKind>().is_err());
    }

    #[test]
    fn two_cell_walks_still_valid() {
        // Degenerate sizes should not panic or produce invalid rows.
        let m = ring_walk(2, 0.5, 0.25, 1e-5).unwrap();
        assert!(m.is_ergodic());
        let m = line_walk(1, 0.5, 0.25, 0.0).unwrap();
        assert_eq!(m.prob(CellId::new(0), CellId::new(0)), 1.0);
    }
}

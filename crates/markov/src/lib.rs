//! Finite discrete-time Markov chain substrate for the chaff-based
//! location-privacy system.
//!
//! This crate provides the mobility-model machinery assumed by
//! *Location Privacy in Mobile Edge Clouds: A Chaff-based Approach*
//! (He, Ciftcioglu, Wang, Chan): a user moving between MEC coverage cells is
//! modeled as an ergodic Markov chain over a finite cell space (Sec. II-C of
//! the paper), and every quantity the paper's analysis needs — stationary
//! distributions, per-row entropies, Kullback–Leibler skewness, total
//! variation distance and ε-mixing times — is computed here.
//!
//! # Overview
//!
//! * [`CellId`] — index of one MEC coverage cell.
//! * [`TransitionMatrix`] — validated row-stochastic matrix with per-row
//!   sparse support lists (the trace-driven empirical matrices of the paper
//!   are extremely sparse; all downstream algorithms iterate supports).
//! * [`StateDistribution`] — validated probability vector (initial or
//!   stationary distribution).
//! * [`MarkovChain`] — a transition matrix bundled with its initial
//!   (stationary) distribution; sampling and log-likelihoods.
//! * [`LogLikelihoodTable`] — precomputed columnar log-likelihood kernel
//!   for batch (fleet-scale) trajectory scoring.
//! * [`MobilityRegistry`] — heterogeneous fleets: a small set of model
//!   classes (one cached table each, per epoch) mapped onto arbitrarily
//!   many users.
//! * [`EpochSchedule`] — repeating slot → epoch map for time-varying
//!   mobility (day/night commuters); one-epoch schedules reduce
//!   bit-for-bit to the stationary path.
//! * [`Trajectory`] — a sequence of cells over discrete time slots.
//! * [`CellGrid`] / [`TrajectoryArena`] — compact columnar storage for
//!   fleet-scale populations: every cell of a uniform-horizon population
//!   in one contiguous 4-byte-per-cell arena (slot-major for the
//!   detectors, trajectory-major for the generators).
//! * [`models`] — the four synthetic mobility models of Sec. VII-A.
//! * [`entropy`], [`mixing`], [`stationary`] — analysis helpers.
//!
//! # Example
//!
//! ```
//! use chaff_markov::{models::ModelKind, MarkovChain};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), chaff_markov::MarkovError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let matrix = ModelKind::NonSkewed.build(10, &mut rng)?;
//! let chain = MarkovChain::new(matrix)?;
//! let trajectory = chain.sample_trajectory(100, &mut rng);
//! assert_eq!(trajectory.len(), 100);
//! assert!(chain.log_likelihood(&trajectory).is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod chain;
mod columnar;
mod distribution;
mod epoch;
mod error;
mod loglik;
mod matrix;
mod registry;
mod trajectory;

pub mod entropy;
pub mod mixing;
pub mod models;
pub mod stationary;

pub use cell::CellId;
pub use chain::MarkovChain;
pub use columnar::{ArenaRowsMut, CellGrid, TrajectoryArena};
pub use distribution::StateDistribution;
pub use epoch::EpochSchedule;
pub use error::MarkovError;
pub use loglik::{LogLikelihoodTable, DENSE_STATE_LIMIT, LANE_WIDTH};
pub use matrix::TransitionMatrix;
pub use registry::MobilityRegistry;
pub use trajectory::Trajectory;

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, MarkovError>;

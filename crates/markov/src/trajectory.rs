//! Trajectories: cell sequences over consecutive slots, with the
//! coincidence (co-location) count used throughout the paper.

use crate::CellId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sequence of cells occupied over consecutive time slots.
///
/// This is a trajectory `x = (x_t)_{t=1}^T` in the paper's notation. Slots
/// are 0-indexed in code (`get(0)` is the paper's `x_1`).
///
/// # Example
///
/// ```
/// use chaff_markov::{CellId, Trajectory};
///
/// let a = Trajectory::from_indices([0, 1, 2]);
/// let b = Trajectory::from_indices([0, 2, 2]);
/// assert_eq!(a.len(), 3);
/// assert_eq!(a.coincidences(&b), 2); // slots 0 and 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Trajectory {
    cells: Vec<CellId>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory { cells: Vec::new() }
    }

    /// Creates an empty trajectory with capacity for `n` slots.
    pub fn with_capacity(n: usize) -> Self {
        Trajectory {
            cells: Vec::with_capacity(n),
        }
    }

    /// Builds a trajectory from raw cell indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        Trajectory {
            cells: indices.into_iter().map(CellId::new).collect(),
        }
    }

    /// Number of time slots covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the trajectory covers no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell occupied in slot `t` (0-indexed), if within range.
    #[inline]
    pub fn get(&self, t: usize) -> Option<CellId> {
        self.cells.get(t).copied()
    }

    /// The cell occupied in slot `t` (0-indexed).
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    #[inline]
    pub fn cell(&self, t: usize) -> CellId {
        self.cells[t]
    }

    /// The final cell, if the trajectory is non-empty.
    #[inline]
    pub fn last(&self) -> Option<CellId> {
        self.cells.last().copied()
    }

    /// Appends a slot.
    #[inline]
    pub fn push(&mut self, cell: CellId) {
        self.cells.push(cell);
    }

    /// Iterates cells in slot order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, CellId>> {
        self.cells.iter().copied()
    }

    /// The underlying cell slice.
    #[inline]
    pub fn as_slice(&self) -> &[CellId] {
        &self.cells
    }

    /// A view of the first `t` slots (clamped to the length).
    pub fn prefix(&self, t: usize) -> &[CellId] {
        &self.cells[..t.min(self.cells.len())]
    }

    /// Number of slots where this trajectory co-locates with `other`
    /// (the objective of the paper's OO strategy, eq. 4).
    ///
    /// Compares up to the shorter of the two lengths.
    pub fn coincidences(&self, other: &Trajectory) -> usize {
        self.cells
            .iter()
            .zip(&other.cells)
            .filter(|(a, b)| a == b)
            .count()
    }

    /// Per-slot co-location indicators against `other`, over the shorter of
    /// the two lengths.
    pub fn coincidence_indicators(&self, other: &Trajectory) -> Vec<bool> {
        self.cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| a == b)
            .collect()
    }

    /// Fraction of slots occupied in each cell: the empirical occupancy
    /// distribution (used as the empirical steady state for traces).
    ///
    /// Returns a weight vector of length `num_cells`; all zeros if the
    /// trajectory is empty.
    pub fn occupancy(&self, num_cells: usize) -> Vec<f64> {
        let mut counts = vec![0.0; num_cells];
        for &c in &self.cells {
            counts[c.index()] += 1.0;
        }
        if !self.cells.is_empty() {
            let n = self.cells.len() as f64;
            for w in &mut counts {
                *w /= n;
            }
        }
        counts
    }
}

impl From<Vec<CellId>> for Trajectory {
    fn from(cells: Vec<CellId>) -> Self {
        Trajectory { cells }
    }
}

impl FromIterator<CellId> for Trajectory {
    fn from_iter<I: IntoIterator<Item = CellId>>(iter: I) -> Self {
        Trajectory {
            cells: iter.into_iter().collect(),
        }
    }
}

impl Extend<CellId> for Trajectory {
    fn extend<I: IntoIterator<Item = CellId>>(&mut self, iter: I) {
        self.cells.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trajectory {
    type Item = CellId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, CellId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for Trajectory {
    type Item = CellId;
    type IntoIter = std::vec::IntoIter<CellId>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.into_iter()
    }
}

impl fmt::Display for Trajectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", c.index())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coincidences_counts_matching_slots() {
        let a = Trajectory::from_indices([0, 1, 2, 3]);
        let b = Trajectory::from_indices([0, 9, 2, 9]);
        assert_eq!(a.coincidences(&b), 2);
        assert_eq!(a.coincidence_indicators(&b), vec![true, false, true, false]);
    }

    #[test]
    fn coincidences_use_shorter_length() {
        let a = Trajectory::from_indices([0, 1, 2]);
        let b = Trajectory::from_indices([0, 1]);
        assert_eq!(a.coincidences(&b), 2);
    }

    #[test]
    fn prefix_clamps() {
        let a = Trajectory::from_indices([4, 5, 6]);
        assert_eq!(a.prefix(2).len(), 2);
        assert_eq!(a.prefix(10).len(), 3);
    }

    #[test]
    fn occupancy_normalizes() {
        let a = Trajectory::from_indices([0, 0, 1, 2]);
        let occ = a.occupancy(4);
        assert!((occ[0] - 0.5).abs() < 1e-12);
        assert!((occ[3] - 0.0).abs() < 1e-12);
        assert!((occ.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collect_and_display() {
        let t: Trajectory = (0..3).map(CellId::new).collect();
        assert_eq!(t.to_string(), "[0 1 2]");
        assert_eq!(t.last(), Some(CellId::new(2)));
    }

    #[test]
    fn empty_trajectory_behaviour() {
        let t = Trajectory::new();
        assert!(t.is_empty());
        assert_eq!(t.get(0), None);
        assert_eq!(t.occupancy(3), vec![0.0; 3]);
    }
}

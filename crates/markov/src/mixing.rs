//! Total-variation distance and ε-mixing times.
//!
//! Theorems V.4 and V.5 of the paper bound tracking accuracy through the
//! ε-mixing time of an induced product chain: `t_mix(ε)` is the first time
//! `t` at which `max_y ‖P^t(y, ·) − π‖_TV ≤ ε` (Levin–Peres–Wilmer
//! convention). This module computes it exactly by evolving all rows of the
//! `t`-step transition kernel, iterating sparse row supports.

use crate::{StateDistribution, TransitionMatrix};

/// Total variation distance `½ Σ |p_i − q_i|` between two finite
/// distributions given as slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "TV distance requires equal lengths");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Worst-case (over starting states) TV distance of the `t`-step kernel to
/// the stationary distribution, for `t` = each step of an in-place rollout.
///
/// Returns the smallest `t ≥ 0` with
/// `max_y ‖P^t(y, ·) − π‖_TV ≤ epsilon`, or `None` if the bound is not
/// reached within `max_t` steps (e.g. periodic chains).
///
/// Complexity `O(max_t · n · nnz)` time and `O(n²)` memory, so this is
/// intended for moderate state spaces (the paper's product chains have
/// `n = L²` with `L = 10`).
///
/// # Panics
///
/// Panics (debug assertion) on dimension mismatch between the matrix and
/// distribution.
pub fn mixing_time(
    matrix: &TransitionMatrix,
    stationary: &StateDistribution,
    epsilon: f64,
    max_t: usize,
) -> Option<usize> {
    debug_assert_eq!(matrix.num_states(), stationary.num_states());
    let n = matrix.num_states();
    let pi = stationary.as_slice();

    // rows[y] = P^t(y, ·), initialized at t = 0 to point masses.
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|y| {
            let mut r = vec![0.0; n];
            r[y] = 1.0;
            r
        })
        .collect();
    let mut scratch = vec![0.0; n];

    let worst = |rows: &[Vec<f64>]| -> f64 {
        rows.iter()
            .map(|r| total_variation(r, pi))
            .fold(0.0, f64::max)
    };

    if worst(&rows) <= epsilon {
        return Some(0);
    }
    for t in 1..=max_t {
        for row in rows.iter_mut() {
            matrix.apply_left(row, &mut scratch);
            std::mem::swap(row, &mut scratch);
        }
        if worst(&rows) <= epsilon {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::stationary;
    use crate::TransitionMatrix;

    #[test]
    fn tv_basics() {
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((total_variation(&[0.8, 0.2], &[0.5, 0.5]) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn tv_panics_on_mismatch() {
        total_variation(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn uniform_matrix_mixes_in_one_step() {
        let m = TransitionMatrix::uniform(6).unwrap();
        let pi = stationary(&m).unwrap();
        assert_eq!(mixing_time(&m, &pi, 1e-9, 10), Some(1));
    }

    #[test]
    fn lazy_chain_mixes_eventually() {
        let m = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        let pi = stationary(&m).unwrap();
        let t = mixing_time(&m, &pi, 0.01, 1000).unwrap();
        // TV decays as (0.8)^t / 2; need (0.8)^t / 2 <= 0.01 -> t >= 18.
        assert!((15..=25).contains(&t), "t = {t}");
    }

    #[test]
    fn periodic_chain_never_mixes() {
        let swap = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let pi = StateDistribution::uniform(2).unwrap();
        assert_eq!(mixing_time(&swap, &pi, 0.1, 100), None);
    }

    #[test]
    fn mixing_time_monotone_in_epsilon() {
        let m = TransitionMatrix::from_rows(vec![
            vec![0.5, 0.25, 0.25],
            vec![0.25, 0.5, 0.25],
            vec![0.25, 0.25, 0.5],
        ])
        .unwrap();
        let pi = stationary(&m).unwrap();
        let loose = mixing_time(&m, &pi, 0.1, 1000).unwrap();
        let tight = mixing_time(&m, &pi, 1e-6, 1000).unwrap();
        assert!(tight >= loose);
    }
}

//! Stationary-distribution solvers.
//!
//! The paper assumes an ergodic user chain with steady state `π` satisfying
//! `π P = π` and `π(x) > 0` for all cells (Sec. II-C). Two solvers are
//! provided: fixed-point power iteration (the default; `O(iters · nnz)`) and
//! direct Gaussian elimination (`O(n³)`, exact up to rounding, useful as a
//! cross-check in tests and for small chains).

use crate::{MarkovError, Result, StateDistribution, TransitionMatrix};

/// Default convergence tolerance (total-variation distance between
/// successive iterates) for [`power_iteration`].
pub const DEFAULT_TOLERANCE: f64 = 1e-12;

/// Default iteration cap for [`power_iteration`].
pub const DEFAULT_MAX_ITERATIONS: usize = 200_000;

/// Computes the stationary distribution by power iteration.
///
/// Starts from the uniform distribution and repeatedly applies the matrix
/// until the total-variation change drops below `tolerance`.
///
/// # Errors
///
/// Returns [`MarkovError::NoConvergence`] if the tolerance is not reached
/// within `max_iterations` (e.g. for a periodic chain), and propagates
/// validation errors for degenerate results.
pub fn power_iteration(
    matrix: &TransitionMatrix,
    tolerance: f64,
    max_iterations: usize,
) -> Result<StateDistribution> {
    let n = matrix.num_states();
    let mut current = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..max_iterations {
        matrix.apply_left(&current, &mut next);
        let delta = crate::mixing::total_variation(&current, &next);
        std::mem::swap(&mut current, &mut next);
        if delta < tolerance {
            // Renormalize to absorb accumulated floating-point drift.
            let sum: f64 = current.iter().sum();
            for p in &mut current {
                *p /= sum;
            }
            return StateDistribution::from_vec(current);
        }
    }
    Err(MarkovError::NoConvergence {
        iterations: max_iterations,
    })
}

/// Computes the stationary distribution with default tolerances.
///
/// # Errors
///
/// See [`power_iteration`].
pub fn stationary(matrix: &TransitionMatrix) -> Result<StateDistribution> {
    power_iteration(matrix, DEFAULT_TOLERANCE, DEFAULT_MAX_ITERATIONS)
}

/// Computes the stationary distribution by direct linear solve.
///
/// Solves `(Pᵀ - I) π = 0` with the normalization `Σ π = 1` substituted for
/// the last equation, via Gaussian elimination with partial pivoting.
/// `O(n³)` — intended for small chains and as a cross-check of
/// [`power_iteration`].
///
/// # Errors
///
/// Returns [`MarkovError::NotErgodic`] when the system is singular (the
/// chain does not have a unique stationary distribution).
pub fn direct_solve(matrix: &TransitionMatrix) -> Result<StateDistribution> {
    let n = matrix.num_states();
    // Build A = Pᵀ - I with the last row replaced by all-ones; b = e_n.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        let row = matrix.row(crate::CellId::new(i));
        for j in 0..n {
            a[j * n + i] = row[j];
        }
    }
    for i in 0..n {
        a[i * n + i] -= 1.0;
    }
    for j in 0..n {
        a[(n - 1) * n + j] = 1.0;
    }
    let mut b = vec![0.0f64; n];
    b[n - 1] = 1.0;

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1 * n + col]
                    .abs()
                    .partial_cmp(&a[r2 * n + col].abs())
                    .expect("finite pivots")
            })
            .expect("non-empty range");
        let pivot = a[pivot_row * n + col];
        if pivot.abs() < 1e-12 {
            return Err(MarkovError::NotErgodic);
        }
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
            }
            b.swap(col, pivot_row);
        }
        for r in (col + 1)..n {
            let factor = a[r * n + col] / a[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[r * n + j] -= factor * a[col * n + j];
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in (row + 1)..n {
            acc -= a[row * n + j] * x[j];
        }
        x[row] = acc / a[row * n + row];
    }
    // Clamp tiny negative rounding artifacts and renormalize.
    for v in &mut x {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
    }
    StateDistribution::from_weights(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellId;

    fn two_state() -> TransitionMatrix {
        TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.3, 0.7]]).unwrap()
    }

    #[test]
    fn two_state_closed_form() {
        // pi = (q, p) / (p + q) for p = P(0->1), q = P(1->0).
        let m = two_state();
        let pi = stationary(&m).unwrap();
        let expected0 = 0.3 / 0.4;
        assert!((pi.prob(CellId::new(0)) - expected0).abs() < 1e-9);
    }

    #[test]
    fn power_and_direct_agree() {
        let m = TransitionMatrix::from_rows(vec![
            vec![0.2, 0.5, 0.3],
            vec![0.4, 0.1, 0.5],
            vec![0.25, 0.25, 0.5],
        ])
        .unwrap();
        let a = stationary(&m).unwrap();
        let b = direct_solve(&m).unwrap();
        for i in 0..3 {
            assert!((a.prob(CellId::new(i)) - b.prob(CellId::new(i))).abs() < 1e-8);
        }
    }

    #[test]
    fn stationary_is_fixed_point() {
        let m = two_state();
        let pi = stationary(&m).unwrap();
        // Verify pi P = pi component-wise.
        let n = m.num_states();
        for j in 0..n {
            let mut acc = 0.0;
            for i in 0..n {
                acc += pi.prob(CellId::new(i)) * m.prob(CellId::new(i), CellId::new(j));
            }
            assert!((acc - pi.prob(CellId::new(j))).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_matrix_has_uniform_stationary() {
        let m = TransitionMatrix::uniform(7).unwrap();
        let pi = stationary(&m).unwrap();
        for i in 0..7 {
            assert!((pi.prob(CellId::new(i)) - 1.0 / 7.0).abs() < 1e-10);
        }
    }

    #[test]
    fn periodic_chain_fails_power_iteration() {
        let swap = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        // The uniform start is actually stationary for the swap chain, so use
        // direct solve semantics: the swap chain has a unique stationary
        // distribution (0.5, 0.5) even though it is periodic. Power iteration
        // from uniform converges immediately to it.
        let pi = stationary(&swap).unwrap();
        assert!((pi.prob(CellId::new(0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reducible_chain_direct_solve_errors() {
        let m = TransitionMatrix::identity(3).unwrap();
        assert!(matches!(direct_solve(&m), Err(MarkovError::NotErgodic)));
    }
}

//! Workspace-local, dependency-free stand-in for `proptest`.
//!
//! The build container has no network access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//!   implemented for numeric ranges and 2-/3-tuples of strategies;
//! * [`collection::vec`] with `usize` or range size bounds;
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//!   [`prop_assert!`] / [`prop_assert_eq!`], and [`ProptestConfig`].
//!
//! Semantics differ from upstream in one deliberate way: failing cases
//! are **not shrunk** — a failure panics immediately, after printing the
//! failing case index to stderr (rerun with the same build to reproduce;
//! sampling is deterministic per test name and case index).

#![forbid(unsafe_code)]

/// Runner configuration for [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test body is run with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Strategies: deterministic samplers of arbitrary values.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of an associated type.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking; a
    /// strategy is just a deterministic function of the runner RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Produces a new strategy from each value and samples it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// A strategy producing a fixed value (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds accepted by [`vec`]: an exact `usize` or a range.
    pub trait IntoSizeRange {
        /// Returns the inclusive `(min, max)` length pair.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Produces vectors of values drawn from `element`, with a length
    /// drawn uniformly from `size` (exact `usize`, `a..b` or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..=self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[doc(hidden)]
pub mod __runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test, per-case RNG: FNV-1a over the test name,
    /// mixed with the case index.
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, run for [`ProptestConfig::cases`] random cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = (<$crate::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::__runner::case_rng(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| -> () { $body }),
                    );
                    if let Err(__panic) = __result {
                        eprintln!(
                            "proptest: test {} failed at case {} of {} \
                             (sampling is deterministic per test name and \
                             case index)",
                            stringify!($name),
                            __case,
                            __config.cases,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10).prop_flat_map(|n| (n..=n, 0.0f64..1.0))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(0usize..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn flat_map_threads_values(p in arb_pair()) {
            let (n, f) = p;
            prop_assert_eq!(n, n);
            prop_assert!((0.0..1.0).contains(&f));
        }
    }
}

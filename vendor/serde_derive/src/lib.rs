//! Offline no-op derive shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! that downstream users with the real serde can round-trip them, but
//! nothing in-tree performs serialization. With no network access the
//! real `serde_derive` (and its syn/quote dependency tree) is
//! unavailable, so these derives expand to nothing; they exist purely so
//! the `#[derive(...)]` attributes — and `#[serde(...)]` helper
//! attributes — compile.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

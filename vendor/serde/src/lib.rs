//! Workspace-local stand-in for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` trait names and (behind the
//! `derive` feature) the no-op derive macros from the vendored
//! `serde_derive` shim. Nothing in this workspace serializes at runtime;
//! the derives document intent and keep the public types ready for the
//! real serde when a registry is available — swap the `vendor/serde`
//! path for a crates.io version in the root manifest and everything
//! compiles unchanged.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the vendored
/// derive emits no impls and nothing in-tree calls serialization).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}

//! Workspace-local, dependency-free stand-in for the `rand` crate.
//!
//! The build container has no network access, so this vendored crate
//! implements exactly the subset of the rand 0.9 API the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits (with the blanket
//!   `Rng for R: RngCore` impl, so `&mut dyn RngCore` receivers work);
//! * [`rngs::StdRng`], a seedable xoshiro256** generator;
//! * `random()`, `random_range(..)`, `random_bool(p)` and `sample(d)`;
//! * the [`distr`] module with [`distr::Distribution`] and
//!   [`distr::StandardUniform`].
//!
//! The generator is deterministic given a seed, which is all the
//! reproduction harness requires; it is NOT cryptographically secure and
//! the stream differs from upstream `StdRng` (ChaCha12). Unit tests that
//! assert exact draws are written against this stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from the raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 —
    /// distinct `u64` seeds give well-separated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Distributions over values, sampled with an [`RngCore`].
pub mod distr {
    use super::RngCore;

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution for a type: unit interval for
    /// floats, full range for integers, fair coin for `bool`.
    pub struct StandardUniform;

    impl Distribution<f64> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<u32> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span_end = if inclusive {
                    (hi as i128) + 1
                } else {
                    hi as i128
                };
                let span = (span_end - lo as i128) as u128;
                assert!(span > 0, "cannot sample from empty range");
                if span > u64::MAX as u128 {
                    // Full-width inclusive range (e.g. 0..=u64::MAX):
                    // every 64-bit draw is already uniform over it.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                // Rejection sampling over u64 to avoid modulo bias.
                let span = span as u64;
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return ((lo as i128) + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $standard:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                }
                let unit: $t =
                    distr::Distribution::<$t>::sample(&distr::StandardUniform, rng);
                let v = lo + (hi - lo) * unit;
                if !inclusive && v >= hi {
                    // `lo + (hi - lo) * unit` can round up to exactly `hi`
                    // (e.g. when the spacing of floats near `hi` exceeds
                    // the span fraction); keep the half-open contract.
                    hi.next_down().max(lo)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32 => f32, f64 => f64);

/// Ranges (half-open and inclusive) usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws from the [`distr::StandardUniform`] distribution.
    fn random<T>(&mut self) -> T
    where
        distr::StandardUniform: distr::Distribution<T>,
    {
        distr::Distribution::sample(&distr::StandardUniform, self)
    }

    /// Draws uniformly from a range, e.g. `rng.random_range(0..n)`.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: distr::Distribution<T>>(&mut self, distribution: D) -> T {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Returns a fresh, uniquely-seeded generator — the stand-in for
/// upstream's thread-local `rand::rng()`. Each call draws a distinct
/// stream (process-global counter mixed with the clock); use
/// [`SeedableRng::seed_from_u64`] when reproducibility matters.
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nonce = COUNTER.fetch_add(1, Ordering::Relaxed);
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    rngs::StdRng::seed_from_u64(clock.rotate_left(17) ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Same trait surface as upstream `rand::rngs::StdRng`, but a
    /// different (non-cryptographic) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn dyn_rngcore_receivers_get_rng_methods() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.random_range(0usize..10);
        assert!(v < 10);
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(0u64..=u64::MAX);
        let _ = rng.random_range(i64::MIN..=i64::MAX);
        let _ = rng.random_range(0usize..=usize::MAX);
    }

    #[test]
    fn float_ranges_respect_the_exclusive_upper_bound() {
        // Near 2^53 the f64 spacing exceeds a span of 2, so the naive
        // `lo + (hi - lo) * unit` rounds up to `hi` about half the time.
        let mut rng = StdRng::seed_from_u64(6);
        let lo = 9_007_199_254_740_992.0f64;
        let hi = 9_007_199_254_740_994.0f64;
        for _ in 0..1_000 {
            let v = rng.random_range(lo..hi);
            assert!((lo..hi).contains(&v), "{v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn range_mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

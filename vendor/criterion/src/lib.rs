//! Workspace-local, dependency-free stand-in for `criterion`.
//!
//! The build container has no network access, so this vendored crate
//! implements the subset of the criterion API the workspace's benches
//! use: [`Criterion`] with `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_function`, `benchmark_group` (with
//! `bench_with_input` and [`BenchmarkId`]), [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is wall-clock over `sample_size` samples (after a
//! warm-up period), printed as one line per benchmark — no plots or
//! HTML reports. When the `CRITERION_JSON` environment variable names a
//! file, each result is also appended there as one JSON-lines record
//! (`{"benchmark": ..., "mean_ns": ...}`, plus `"p50_ns"` / `"p95_ns"` /
//! `"p99_ns"` nearest-rank percentiles over the per-sample times — the
//! tail-latency view streaming benchmarks gate on — and
//! `"peak_rss_bytes"` on Linux — the benchmark's peak resident set,
//! measured via a best-effort `VmHWM` watermark reset per benchmark) so
//! CI can archive machine-readable baselines and gate memory and
//! tail-latency regressions next to runtime regressions. Bench binaries
//! can additionally stamp the measurement environment into the same file
//! as `{"metadata": {...}}` lines via [`record_metadata`] (worker-pool
//! size, vector lane width); downstream tooling reports those
//! informationally. The file is truncated at
//! harness start so stale records (e.g. surviving a cached `target/`)
//! never pollute a baseline; multi-binary `cargo bench` invocations that
//! should accumulate into one file set `CRITERION_RUN_TOKEN` to a
//! per-invocation value. Swap the `vendor/criterion` path in the root
//! manifest for the crates.io crate to get the real harness; the bench
//! sources compile unchanged.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A two-part id, rendered as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up period run before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.config, &id.into().text, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().text);
        run_one(&self.criterion.config, &label, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().text);
        run_one(&self.criterion.config, &label, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op shim).
    pub fn finish(self) {}
}

/// One benchmark's measurement: the mean plus nearest-rank percentiles
/// over the per-sample times (each sample is the mean of one timed
/// batch, so percentiles describe sample-to-sample variation — the
/// tail-latency signal for per-slot streaming benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Mean wall-clock nanoseconds per call over all samples.
    pub mean_ns: f64,
    /// Median (50th percentile) of the per-sample times.
    pub p50_ns: f64,
    /// 95th percentile of the per-sample times.
    pub p95_ns: f64,
    /// 99th percentile of the per-sample times.
    pub p99_ns: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted_ns.is_empty());
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil().max(1.0) as usize;
    sorted_ns[rank.min(sorted_ns.len()) - 1]
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher<'a> {
    config: &'a Config,
    measurement: Option<Measurement>,
}

impl Bencher<'_> {
    /// Measures `routine`, recording the mean wall-clock time per call
    /// and per-sample percentiles.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size batches so the whole measurement fits the time budget.
        let budget = self.config.measurement_time.as_secs_f64();
        let total_iters = ((budget / per_iter.max(1e-9)) as u64).max(1);
        // Routines slower than budget/sample_size get fewer samples
        // rather than blowing through the measurement budget.
        let samples = (self.config.sample_size as u64).min(total_iters);
        let batch = (total_iters / samples).max(1);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut sample_ns = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            sample_ns.push(elapsed.as_secs_f64() * 1e9 / batch as f64);
            total += elapsed;
            iters += batch;
        }
        sample_ns.sort_by(f64::total_cmp);
        self.measurement = Some(Measurement {
            mean_ns: total.as_secs_f64() * 1e9 / iters as f64,
            p50_ns: percentile(&sample_ns, 50.0),
            p95_ns: percentile(&sample_ns, 95.0),
            p99_ns: percentile(&sample_ns, 99.0),
        });
    }
}

fn run_one(config: &Config, label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        config,
        measurement: None,
    };
    // Clear the kernel's peak-RSS watermark so the value read after the
    // run is (best-effort) this benchmark's own peak, not an earlier
    // benchmark's.
    reset_peak_rss();
    f(&mut bencher);
    let peak_rss = peak_rss_bytes();
    match bencher.measurement {
        Some(m) => {
            println!(
                "{label:<50} time: [{}] p99: [{}]",
                format_ns(m.mean_ns),
                format_ns(m.p99_ns)
            );
            append_json_record(label, &m, peak_rss);
        }
        None => println!("{label:<50} time: [no measurement]"),
    }
}

/// Parses the `VmHWM` (peak resident set size) line of a
/// `/proc/<pid>/status` document, in kB.
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    status.lines().find_map(|line| {
        let rest = line.strip_prefix("VmHWM:")?;
        rest.trim().strip_suffix("kB")?.trim().parse().ok()
    })
}

/// The process's peak resident set size in bytes (Linux only; `None`
/// where `/proc` is unavailable, in which case records simply omit the
/// field and the RSS gate skips).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    Some(parse_vm_hwm_kb(&status)? * 1024)
}

/// Best-effort reset of the peak-RSS watermark (`echo 5 >
/// /proc/self/clear_refs`). When the write is not permitted the
/// watermark stays monotone across the process — still comparable
/// between CI runs, which execute benchmarks in a fixed order.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", b"5");
}

/// When the `CRITERION_JSON` environment variable names a file, appends
/// one JSON object per benchmark (`{"benchmark": ..., "mean_ns": ...}`,
/// JSON-lines format) so CI can archive machine-readable baselines. The
/// upstream crate writes its own JSON under `target/criterion`; this is
/// the shim's lightweight equivalent.
///
/// The file is truncated once at harness start (before this process's
/// first record) so stale records — e.g. left behind by a previous run
/// against a cached `target/` — can never pollute an archived baseline;
/// see [`prepare_json_output`] for how multi-binary `cargo bench`
/// invocations accumulate into one file via `CRITERION_RUN_TOKEN`.
fn append_json_record(label: &str, measurement: &Measurement, peak_rss_bytes: Option<u64>) {
    let Some(path) = json_output_path() else {
        return;
    };
    if let Err(e) = write_json_record(&path, label, measurement, peak_rss_bytes) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

/// The `CRITERION_JSON` output path, with the truncate-at-start
/// preparation applied exactly once per process (shared by benchmark
/// records and [`record_metadata`] lines, whichever comes first).
fn json_output_path() -> Option<std::path::PathBuf> {
    let path = std::env::var("CRITERION_JSON").ok()?;
    if path.is_empty() {
        return None;
    }
    let path = std::path::PathBuf::from(path);
    static PREPARE: std::sync::Once = std::sync::Once::new();
    PREPARE.call_once(|| {
        prepare_json_output(&path, std::env::var("CRITERION_RUN_TOKEN").ok().as_deref());
    });
    Some(path)
}

/// Appends one `{"metadata": {...}}` record to the `CRITERION_JSON`
/// output (JSON-lines, through the same truncate-at-start path as
/// benchmark records), so baselines carry the measurement environment —
/// worker-pool size, vector lane width — next to the numbers they
/// contextualize. Downstream tooling (`ci/compare_bench.py`) reports
/// metadata informationally and never gates on it. A no-op when
/// `CRITERION_JSON` is unset; keys must be plain identifiers (they are
/// embedded unescaped).
pub fn record_metadata(entries: &[(&str, u64)]) {
    let Some(path) = json_output_path() else {
        return;
    };
    if let Err(e) = write_metadata_record(&path, entries) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

/// Serializes one metadata record as a JSON line.
fn write_metadata_record(path: &std::path::Path, entries: &[(&str, u64)]) -> std::io::Result<()> {
    use std::io::Write;

    let fields: Vec<String> = entries
        .iter()
        .map(|(key, value)| format!("\"{key}\": {value}"))
        .collect();
    let record = format!("{{\"metadata\": {{{}}}}}\n", fields.join(", "));
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?
        .write_all(record.as_bytes())
}

/// Truncates (or creates) the JSON-lines output at harness start.
///
/// Without a token, every bench binary starts the file fresh — correct
/// for single-binary runs (`cargo bench --bench foo`), and never lets a
/// stale file grow. When one `cargo bench` invocation runs *several*
/// bench binaries that should accumulate into one baseline, set
/// `CRITERION_RUN_TOKEN` to a value unique to the invocation (CI uses
/// the workflow run id): the first binary that sees a new token
/// truncates the file and stamps a `<file>.token` sentinel, and the
/// sibling binaries of the same invocation append.
fn prepare_json_output(path: &std::path::Path, token: Option<&str>) {
    let truncate = |p: &std::path::Path| {
        if let Err(e) = std::fs::write(p, b"") {
            eprintln!("criterion shim: cannot truncate {}: {e}", p.display());
        }
    };
    match token {
        None => truncate(path),
        Some(token) => {
            let sentinel = sentinel_path(path);
            let fresh = std::fs::read_to_string(&sentinel)
                .map(|stamped| stamped == token)
                .unwrap_or(false);
            if !fresh {
                truncate(path);
                if let Err(e) = std::fs::write(&sentinel, token) {
                    eprintln!("criterion shim: cannot stamp {}: {e}", sentinel.display());
                }
            }
        }
    }
}

/// The sidecar file recording which `CRITERION_RUN_TOKEN` last truncated
/// a JSON output.
fn sentinel_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".token");
    std::path::PathBuf::from(os)
}

/// Appends one JSON-lines record to `path`: the mean, the per-sample
/// latency percentiles (so CI can gate tail regressions), and
/// `peak_rss_bytes` when the platform exposes it.
fn write_json_record(
    path: &std::path::Path,
    label: &str,
    measurement: &Measurement,
    peak_rss_bytes: Option<u64>,
) -> std::io::Result<()> {
    use std::io::Write;

    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let rss = peak_rss_bytes.map_or(String::new(), |b| format!(", \"peak_rss_bytes\": {b}"));
    let Measurement {
        mean_ns,
        p50_ns,
        p95_ns,
        p99_ns,
    } = measurement;
    let record = format!(
        "{{\"benchmark\": \"{escaped}\", \"mean_ns\": {mean_ns:.1}, \
         \"p50_ns\": {p50_ns:.1}, \"p95_ns\": {p95_ns:.1}, \
         \"p99_ns\": {p99_ns:.1}{rss}}}\n"
    );
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?
        .write_all(record.as_bytes())
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        /// Runs every benchmark target in this group.
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_measures_and_formats() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| b.iter(|| n * 2));
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn unit_formatting_scales() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5.0e4).ends_with("µs"));
        assert!(format_ns(5.0e7).ends_with("ms"));
        assert!(format_ns(5.0e10).ends_with('s'));
    }

    fn flat(ns: f64) -> Measurement {
        Measurement {
            mean_ns: ns,
            p50_ns: ns,
            p95_ns: ns,
            p99_ns: ns,
        }
    }

    #[test]
    fn json_records_append_as_json_lines() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-json-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let first = Measurement {
            mean_ns: 1234.5,
            p50_ns: 1200.0,
            p95_ns: 1500.25,
            p99_ns: 1600.0,
        };
        write_json_record(&path, "group/\"quoted\"", &first, None).unwrap();
        write_json_record(&path, "plain", &flat(7.0), Some(2048)).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"benchmark\": \"group/\\\"quoted\\\"\", \"mean_ns\": 1234.5, \
             \"p50_ns\": 1200.0, \"p95_ns\": 1500.2, \"p99_ns\": 1600.0}"
        );
        assert_eq!(
            lines[1],
            "{\"benchmark\": \"plain\", \"mean_ns\": 7.0, \
             \"p50_ns\": 7.0, \"p95_ns\": 7.0, \"p99_ns\": 7.0, \
             \"peak_rss_bytes\": 2048}"
        );
    }

    #[test]
    fn metadata_records_serialize_as_a_json_line() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-meta-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        write_metadata_record(&path, &[("worker_pool_threads", 4), ("lane_width", 8)]).unwrap();
        write_json_record(&path, "bench", &flat(1.0), None).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"metadata\": {\"worker_pool_threads\": 4, \"lane_width\": 8}}"
        );
        assert!(lines[1].contains("\"benchmark\": \"bench\""));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        // Small samples clamp sensibly: with 2 samples, p99 is the max.
        assert_eq!(percentile(&[3.0, 9.0], 99.0), 9.0);
        assert_eq!(percentile(&[3.0, 9.0], 50.0), 3.0);
        assert_eq!(percentile(&[4.0], 99.0), 4.0);
    }

    #[test]
    fn iter_produces_ordered_percentiles() {
        let mut c = quick();
        c.bench_function("ordered", |b| b.iter(|| std::hint::black_box(2u64.pow(10))));
        // Internal invariant exercised through a direct Bencher run.
        let config = Config {
            sample_size: 8,
            measurement_time: Duration::from_millis(8),
            warm_up_time: Duration::from_millis(1),
        };
        let mut bencher = Bencher {
            config: &config,
            measurement: None,
        };
        bencher.iter(|| std::hint::black_box(1 + 1));
        let m = bencher.measurement.expect("measured");
        assert!(m.p50_ns <= m.p95_ns);
        assert!(m.p95_ns <= m.p99_ns);
        assert!(m.mean_ns > 0.0);
    }

    #[test]
    fn vm_hwm_parses_from_proc_status_text() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:\t  1536 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(1536));
        assert_eq!(parse_vm_hwm_kb("Name:\tbench\n"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn peak_rss_is_positive_where_proc_exists() {
        if let Some(bytes) = peak_rss_bytes() {
            assert!(bytes > 0);
        }
    }

    #[test]
    fn harness_start_truncates_stale_output_without_a_token() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-trunc-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"benchmark\": \"stale\", \"mean_ns\": 1.0}\n").unwrap();
        prepare_json_output(&path, None);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        write_json_record(&path, "fresh", &flat(2.0), None).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(content.lines().count(), 1);
        assert!(content.contains("fresh"));
        assert!(!content.contains("stale"));
    }

    #[test]
    fn run_token_truncates_once_per_invocation_and_accumulates_within_it() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-token-{}.jsonl", std::process::id()));
        let sentinel = sentinel_path(&path);
        let _ = std::fs::remove_file(&sentinel);
        std::fs::write(&path, "{\"benchmark\": \"stale\", \"mean_ns\": 1.0}\n").unwrap();

        // First binary of run A truncates the stale file and stamps it.
        prepare_json_output(&path, Some("run-A"));
        write_json_record(&path, "a1", &flat(1.0), None).unwrap();
        // Sibling binary of the same run appends.
        prepare_json_output(&path, Some("run-A"));
        write_json_record(&path, "a2", &flat(2.0), None).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(!content.contains("stale"));
        assert_eq!(content.lines().count(), 2, "{content}");

        // A new invocation (fresh token) starts the file over.
        prepare_json_output(&path, Some("run-B"));
        write_json_record(&path, "b1", &flat(3.0), None).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sentinel);
        assert_eq!(content.lines().count(), 1);
        assert!(content.contains("b1"));
    }
}

//! Tactical patrol: protecting a highly predictable user.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tactical_patrol
//! ```
//!
//! The paper's motivating tactical scenario (Sec. I): a unit patrols a
//! corridor of cells with a strong drift — the doubly-skewed model (d),
//! the *worst case* for location privacy because the movement is almost
//! deterministic. The example shows (i) how badly a patrol leaks location
//! through the MEC side channel, (ii) how much each chaff strategy
//! recovers, and (iii) what the chaff defense costs in MEC resources.

use mec_location_privacy::core::detector::MlDetector;
use mec_location_privacy::core::metrics::{time_average, tracking_accuracy_series};
use mec_location_privacy::core::strategy::StrategyKind;
use mec_location_privacy::markov::{models, MarkovChain};
use mec_location_privacy::sim::cost::CostModel;
use mec_location_privacy::sim::sim::{SimConfig, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HORIZON: usize = 100;
const RUNS: usize = 200;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-cell patrol corridor: move "forward" with probability 0.5,
    // "back" with 0.25, hold position otherwise; no wrap-around.
    let matrix = models::line_walk(12, 0.5, 0.25, 1e-5)?;
    let chain = MarkovChain::new(matrix)?;
    println!("patrol corridor: 12 cells, drift 2:1 towards the far end\n");

    println!(
        "{:<10} {:>10} {:>14} {:>16}",
        "strategy", "accuracy", "vs no chaff", "defense cost"
    );
    println!("{:-<10} {:->10} {:->14} {:->16}", "", "", "", "");

    // Baseline: no chaff at all — the eavesdropper wins every slot.
    println!("{:<10} {:>10.3} {:>14} {:>16}", "none", 1.0, "-", "0.0");

    for kind in [
        StrategyKind::Im,
        StrategyKind::Ml,
        StrategyKind::Mo,
        StrategyKind::Oo,
        StrategyKind::Rollout,
    ] {
        let strategy = kind.build();
        let mut accuracy_total = 0.0;
        let mut cost_total = 0.0;
        for run in 0..RUNS {
            let mut rng = StdRng::seed_from_u64(7_000 + run as u64);
            // Full MEC simulation: the service follows the patrol, the
            // chaff is orchestrated by the strategy, costs are metered.
            let outcome = Simulation::new(
                &chain,
                SimConfig::new(HORIZON, 1).with_cost_model(CostModel::default()),
            )
            .run_planned(strategy.as_ref(), &mut rng)?;
            let detections = MlDetector.detect_prefixes(&chain, &outcome.observed)?;
            accuracy_total += time_average(&tracking_accuracy_series(
                &outcome.observed,
                outcome.user_observed_index,
                &detections,
            ));
            cost_total += outcome.ledger.defense_cost();
        }
        let accuracy = accuracy_total / RUNS as f64;
        let cost = cost_total / RUNS as f64;
        println!(
            "{:<10} {:>10.3} {:>13.0}% {:>16.1}",
            kind.to_string(),
            accuracy,
            100.0 * (1.0 - accuracy),
            cost
        );
    }

    println!(
        "\nEven for this nearly deterministic patrol, the OO/MO chaffs cut\n\
         tracking drastically — the paper's headline result — while one\n\
         chaff costs roughly one service's worth of MEC resources."
    );
    Ok(())
}

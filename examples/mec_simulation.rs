//! Full MEC system simulation: capacity, migration policies and the
//! cost-privacy trade-off.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mec_simulation
//! ```
//!
//! Uses the `chaff-sim` substrate directly: MEC nodes with finite
//! capacity, an always-follow vs a lazy migration policy for the real
//! service, online MO chaff controllers, and the cost ledger. Shows the
//! trade-off the paper's discussion (Sec. VIII) leaves to future work:
//! privacy gained per unit of chaff spending, and how a lazy migration
//! policy weakens the side channel by itself.

use mec_location_privacy::core::detector::MlDetector;
use mec_location_privacy::core::metrics::{time_average, tracking_accuracy_series};
use mec_location_privacy::core::strategy::MoController;
use mec_location_privacy::markov::{models::ModelKind, MarkovChain};
use mec_location_privacy::sim::migration::LazyThreshold;
use mec_location_privacy::sim::sim::{SimConfig, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HORIZON: usize = 100;
const RUNS: usize = 100;

fn measure(
    chain: &MarkovChain,
    num_chaffs: usize,
    lazy: Option<usize>,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let mut accuracy_total = 0.0;
    let mut cost_total = 0.0;
    for run in 0..RUNS {
        let mut rng = StdRng::seed_from_u64(500 + run as u64);
        let config = SimConfig::new(HORIZON, num_chaffs).with_capacity(8);
        let sim = match lazy {
            Some(threshold) => {
                Simulation::new(chain, config).with_policy(LazyThreshold { threshold })
            }
            None => Simulation::new(chain, config),
        };
        // Online mode: strictly causal MO controllers, as a deployed
        // orchestrator would run them.
        let outcome = sim.run_online(|_| Box::new(MoController::new(chain)), &mut rng)?;
        let detections = MlDetector.detect_prefixes(chain, &outcome.observed)?;
        // The eavesdropper tracks the *user*; under a lazy policy the
        // observed service trajectory is already a blurred version of the
        // user's physical movement, so we score against physical cells.
        let mut trajectories = outcome.observed.clone();
        trajectories.push(outcome.user_cells.clone());
        let user_truth = trajectories.len() - 1;
        accuracy_total += time_average(&tracking_accuracy_series(
            &trajectories,
            user_truth,
            &detections,
        ));
        cost_total += outcome.ledger.defense_cost();
    }
    Ok((accuracy_total / RUNS as f64, cost_total / RUNS as f64))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let chain = MarkovChain::new(ModelKind::SpatiallySkewed.build(12, &mut rng)?)?;

    println!("cost-privacy trade-off (MO chaffs, always-follow service):\n");
    println!("{:<8} {:>10} {:>14}", "chaffs", "accuracy", "defense cost");
    println!("{:-<8} {:->10} {:->14}", "", "", "");
    for num_chaffs in [0, 1, 2, 4, 8] {
        let (accuracy, cost) = measure(&chain, num_chaffs, None)?;
        println!("{num_chaffs:<8} {accuracy:>10.3} {cost:>14.1}");
    }

    println!("\nmigration-policy ablation (1 chaff):\n");
    println!("{:<22} {:>10} {:>14}", "policy", "accuracy", "defense cost");
    println!("{:-<22} {:->10} {:->14}", "", "", "");
    let (follow_acc, follow_cost) = measure(&chain, 1, None)?;
    println!(
        "{:<22} {follow_acc:>10.3} {follow_cost:>14.1}",
        "always-follow"
    );
    for threshold in [1, 2, 4] {
        let (acc, cost) = measure(&chain, 1, Some(threshold))?;
        println!(
            "{:<22} {acc:>10.3} {cost:>14.1}",
            format!("lazy (threshold {threshold})")
        );
    }

    println!(
        "\nTwo levers emerge: spending more on chaffs buys privacy under\n\
         always-follow, while a lazy migration policy blurs the side\n\
         channel for free — at the price of serving the user from a\n\
         distant MEC (QoS, not shown in the ledger)."
    );
    Ok(())
}

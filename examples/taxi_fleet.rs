//! Taxi fleet: trace-driven protection of the most trackable users.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example taxi_fleet
//! ```
//!
//! Rebuilds the paper's trace pipeline (Sec. VII-B) on a synthetic San
//! Francisco fleet: towers → 100 m separation filter → Voronoi cells →
//! inactive-node filtering → linear interpolation → empirical Markov
//! model. Then it finds the most trackable users and protects them with a
//! single OO chaff, the paper's Fig. 9 in miniature.

use mec_location_privacy::core::detector::MlDetector;
use mec_location_privacy::core::metrics::{time_average, tracking_accuracy_series};
use mec_location_privacy::core::strategy::{ChaffStrategy, OoStrategy};
use mec_location_privacy::mobility::pipeline::TraceDatasetBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced scale so the example runs in seconds; bump num_nodes/towers
    // to 174/1100 for the paper's full dimensions.
    let dataset = TraceDatasetBuilder::new()
        .num_nodes(60)
        .num_towers(400)
        .horizon_slots(60)
        .seed(2017)
        .build()?;
    let model = dataset.model();
    let pool = dataset.trajectories();
    println!(
        "dataset: {} active taxis over {} Voronoi cells, {} slots",
        pool.len(),
        dataset.cell_map().num_cells(),
        pool[0].len()
    );

    // Rank users by no-chaff trackability (prefix-ML detection).
    let detections = MlDetector.detect_prefixes(model, pool)?;
    let mut ranked: Vec<(usize, f64)> = (0..pool.len())
        .map(|u| {
            let series = tracking_accuracy_series(pool, u, &detections);
            (u, time_average(&series))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    let baseline = 1.0 / pool.len() as f64;
    println!("\nmost trackable taxis (1/N baseline = {baseline:.3}):");
    println!("{:<8} {:>10} {:>16}", "taxi", "no chaff", "with OO chaff");
    println!("{:-<8} {:->10} {:->16}", "", "", "");
    let mut rng = StdRng::seed_from_u64(99);
    for &(user, base_accuracy) in ranked.iter().take(5) {
        // One OO chaff manufactured against this taxi's trajectory.
        let chaffs = OoStrategy.generate(model, &pool[user], 1, &mut rng)?;
        let mut observed = pool.to_vec();
        observed.extend(chaffs);
        let detections = MlDetector.detect_prefixes(model, &observed)?;
        let protected = time_average(&tracking_accuracy_series(&observed, user, &detections));
        println!(
            "{:<8} {:>10.3} {:>16.3}",
            dataset.node_ids()[user],
            base_accuracy,
            protected
        );
    }

    println!(
        "\nThe OO chaff out-bids the taxi in the likelihood race while\n\
         staying away from it, so the eavesdropper follows the chaff.\n\
         (A taxi whose accuracy stems from co-location with other taxis\n\
         keeps some residual accuracy — no chaff can fix co-location.)"
    );
    Ok(())
}

//! Advanced adversary: when the eavesdropper knows your strategy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example advanced_adversary
//! ```
//!
//! Sec. VI of the paper: a deterministic chaff strategy is a fixed map
//! `Γ` from user trajectories to chaff trajectories, so an eavesdropper
//! who knows the strategy can recognize and discard manufactured
//! trajectories. This example stages that arms race: every strategy
//! against both the basic (strategy-oblivious) and the advanced
//! (strategy-aware) eavesdropper.

use mec_location_privacy::core::detector::{AdvancedDetector, MlDetector};
use mec_location_privacy::core::metrics::{time_average, tracking_accuracy_series};
use mec_location_privacy::core::strategy::StrategyKind;
use mec_location_privacy::markov::{models::ModelKind, MarkovChain};
use rand::rngs::StdRng;
use rand::SeedableRng;

const RUNS: usize = 100;
const HORIZON: usize = 80;
const NUM_CHAFFS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut model_rng = StdRng::seed_from_u64(3);
    let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut model_rng)?)?;

    println!(
        "{:<10} {:>16} {:>18}",
        "strategy", "basic detector", "advanced detector"
    );
    println!("{:-<10} {:->16} {:->18}", "", "", "");
    for kind in [
        StrategyKind::Im,
        StrategyKind::Ml,
        StrategyKind::Oo,
        StrategyKind::Mo,
        StrategyKind::Rml,
        StrategyKind::Roo,
        StrategyKind::Rmo,
    ] {
        let strategy = kind.build();
        let mut basic_total = 0.0;
        let mut advanced_total = 0.0;
        for run in 0..RUNS {
            let mut rng = StdRng::seed_from_u64(1_000 + run as u64);
            let user = chain.sample_trajectory(HORIZON, &mut rng);
            let chaffs = strategy.generate(&chain, &user, NUM_CHAFFS, &mut rng)?;
            let mut observed = vec![user];
            observed.extend(chaffs);

            let basic = MlDetector.detect_prefixes(&chain, &observed)?;
            basic_total += time_average(&tracking_accuracy_series(&observed, 0, &basic));

            let detector = AdvancedDetector::new(strategy.as_ref());
            let advanced = detector.detect_prefixes(&chain, &observed)?;
            advanced_total += time_average(&tracking_accuracy_series(&observed, 0, &advanced));
        }
        println!(
            "{:<10} {:>16.3} {:>18.3}",
            kind.to_string(),
            basic_total / RUNS as f64,
            advanced_total / RUNS as f64
        );
    }

    println!(
        "\nReading the table: the deterministic strategies (ML/OO/MO)\n\
         collapse to ~1.0 against the advanced detector — their chaffs are\n\
         recognized and discarded. The randomized variants (RML/ROO/RMO)\n\
         survive: a handful of random avoid-constraints make every chaff\n\
         unpredictable while costing almost nothing in likelihood. IM is\n\
         immune to strategy knowledge but plateaus far from zero."
    );
    Ok(())
}

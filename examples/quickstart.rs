//! Quickstart: one user, one optimally-controlled chaff, one eavesdropper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the core loop of the library: build a mobility model,
//! sample a user trajectory, generate a chaff with each strategy, and
//! measure how well a maximum-likelihood eavesdropper tracks the user.

use mec_location_privacy::core::detector::MlDetector;
use mec_location_privacy::core::metrics::{time_average, tracking_accuracy_series};
use mec_location_privacy::core::strategy::StrategyKind;
use mec_location_privacy::core::theory::im_tracking_accuracy;
use mec_location_privacy::markov::{models::ModelKind, MarkovChain};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. The user's mobility model: a 10-cell Markov chain with random
    //    transition probabilities (the paper's model (a)).
    let matrix = ModelKind::NonSkewed.build(10, &mut rng)?;
    let chain = MarkovChain::new(matrix)?;
    println!(
        "mobility model: {} cells, entropy rate {:.2} nats",
        chain.num_states(),
        mec_location_privacy::markov::entropy::entropy_rate(chain.matrix(), chain.initial()),
    );

    // 2. The user walks for 100 slots; the delay-sensitive service follows
    //    them between MECs, and the eavesdropper sees every migration.
    let user = chain.sample_trajectory(100, &mut rng);

    // 3. Try each chaff-control strategy with a single chaff and measure
    //    the eavesdropper's tracking accuracy (per-slot prefix detection).
    println!("\n{:<10} {:>18}", "strategy", "tracking accuracy");
    println!("{:-<10} {:->18}", "", "");
    for kind in [
        StrategyKind::Im,
        StrategyKind::Ml,
        StrategyKind::Cml,
        StrategyKind::Mo,
        StrategyKind::Oo,
    ] {
        let strategy = kind.build();
        let chaffs = strategy.generate(&chain, &user, 1, &mut rng)?;
        let mut observed = vec![user.clone()];
        observed.extend(chaffs);
        let detections = MlDetector.detect_prefixes(&chain, &observed)?;
        let accuracy = time_average(&tracking_accuracy_series(&observed, 0, &detections));
        println!("{:<10} {:>18.4}", kind.to_string(), accuracy);
    }

    // 4. Compare against the closed form for IM (eq. 11 of the paper).
    println!(
        "\neq. (11) predicts IM accuracy {:.4} with 1 chaff, {:.4} with 9",
        im_tracking_accuracy(chain.initial(), 2),
        im_tracking_accuracy(chain.initial(), 10),
    );
    println!("\nOO should be near zero: the chaff wins the likelihood race\nwhile staying disjoint from the user.");
    Ok(())
}

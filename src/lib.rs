//! Facade crate for the MEC chaff-based location-privacy workspace.
//!
//! Re-exports the public API of every workspace crate under one roof:
//!
//! * [`markov`] — Markov-chain mobility substrate ([`chaff_markov`]);
//! * [`mobility`] — traces, geometry and Voronoi quantization
//!   ([`chaff_mobility`]);
//! * [`sim`] — the slotted MEC simulator ([`chaff_sim`]);
//! * [`core`] — detectors, chaff strategies and theory ([`chaff_core`]);
//! * [`store`] — the persistent paged fleet store ([`chaff_store`]);
//! * [`eval`] — the figure-reproduction harness ([`chaff_eval`]).
//!
//! See the workspace README for a quickstart and `examples/` for runnable
//! scenarios.

#![forbid(unsafe_code)]

pub use chaff_core as core;
pub use chaff_eval as eval;
pub use chaff_markov as markov;
pub use chaff_mobility as mobility;
pub use chaff_sim as sim;
pub use chaff_store as store;

#!/usr/bin/env python3
"""Bench-regression gate for the BENCH_fleet baseline.

Compares two criterion-shim JSON-lines files (one record per line,
``{"benchmark": <name>, "mean_ns": <float>}``), joining on the benchmark
name, and fails when any benchmark's ``mean_ns`` regressed more than the
threshold (default 25%).

Usage::

    compare_bench.py BASELINE CURRENT [--threshold 0.25]

Exit codes:

* 0 — no regression (including: baseline missing or empty, which only
  warns, so the very first run of a new benchmark or a fresh repository
  never blocks CI);
* 1 — at least one benchmark regressed beyond the threshold;
* 2 — usage or unreadable *current* file (the current results must
  exist: their absence means the bench step itself broke).

Benchmarks present on only one side are reported informationally and
never fail the gate (benches get added and retired); duplicate names
within one file keep the last record (append-mode leftovers).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple


def load_records(path: str) -> Dict[str, float]:
    """Parses a JSON-lines bench file into ``{benchmark: mean_ns}``.

    Unparsable lines are skipped with a warning on stderr — a truncated
    record must not turn the gate into a hard failure. Duplicate names
    keep the last occurrence.
    """
    records: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                name = record["benchmark"]
                mean_ns = float(record["mean_ns"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                print(
                    f"warning: {path}:{lineno}: skipping malformed record ({exc})",
                    file=sys.stderr,
                )
                continue
            records[str(name)] = mean_ns
    return records


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
) -> Tuple[List[str], List[str]]:
    """Joins the two runs on benchmark name.

    Returns ``(report_lines, regressions)`` where ``regressions`` lists
    the benchmarks whose mean regressed more than ``threshold``
    (fractional, e.g. 0.25 for +25%).
    """
    report: List[str] = []
    regressions: List[str] = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            report.append(f"  [gone    ] {name}: baseline {baseline[name]:.1f} ns")
            continue
        if name not in baseline:
            report.append(f"  [new     ] {name}: {current[name]:.1f} ns")
            continue
        base, cur = baseline[name], current[name]
        ratio = (cur - base) / base if base > 0 else 0.0
        tag = "ok      "
        if ratio > threshold:
            tag = "REGRESSED"
            regressions.append(name)
        elif ratio < -threshold:
            tag = "improved"
        report.append(
            f"  [{tag}] {name}: {base:.1f} -> {cur:.1f} ns ({ratio:+.1%})"
        )
    return report, regressions


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="previous BENCH_fleet.json (may be absent)")
    parser.add_argument("current", help="this run's BENCH_fleet.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional mean_ns regression that fails the gate (default 0.25)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.current):
        print(f"error: current bench results missing: {args.current}", file=sys.stderr)
        return 2
    current = load_records(args.current)
    if not current:
        print(f"error: current bench results empty: {args.current}", file=sys.stderr)
        return 2

    if not os.path.exists(args.baseline):
        print(
            f"warning: no baseline at {args.baseline}; skipping regression gate "
            f"(first run, or artifact download failed)"
        )
        return 0
    baseline = load_records(args.baseline)
    if not baseline:
        print(f"warning: baseline {args.baseline} is empty; skipping regression gate")
        return 0

    report, regressions = compare(baseline, current, args.threshold)
    print(f"bench comparison (threshold +{args.threshold:.0%}):")
    for line in report:
        print(line)
    if regressions:
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print("OK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Bench-regression gate for the BENCH_fleet baseline.

Compares two criterion-shim JSON-lines files (one record per line,
``{"benchmark": <name>, "mean_ns": <float>[, "p50_ns": <float>,
"p95_ns": <float>, "p99_ns": <float>][, "peak_rss_bytes": <int>]}``),
joining on the benchmark name, and fails when any benchmark's ``mean_ns``
— or its ``p99_ns`` tail latency or ``peak_rss_bytes``, where both sides
report one — regressed more than the threshold (default 25%). ``p50_ns``
and ``p95_ns`` are carried through for the artifact but not gated: the
mean and the p99 tail bracket the distribution, and gating every
percentile would triple the noise-driven false-failure rate.

Usage::

    compare_bench.py BASELINE CURRENT [--threshold 0.25]

Exit codes:

* 0 — no regression (including: baseline missing or empty, which only
  warns, so the very first run of a new benchmark or a fresh repository
  never blocks CI);
* 1 — at least one benchmark regressed beyond the threshold;
* 2 — usage or unreadable *current* file (the current results must
  exist: their absence means the bench step itself broke).

Benchmarks present on only one side are reported informationally and
never fail the gate (benches get added and retired); a record missing
``peak_rss_bytes`` on either side skips the RSS comparison for that
benchmark (non-Linux shims omit the field); duplicate names within one
file keep the last record (append-mode leftovers).

Files may also carry ``{"metadata": {...}}`` lines describing the
measurement environment (worker-pool thread count, kernel lane width).
These are never gated — a machine-shape change is context for a human
reading a regression, not a regression itself — but both sides' merged
metadata is printed with the report, and keys whose values differ
between baseline and current are called out so a "regression" caused by
a core-count change reads as a machine change. Because the gate joins on
benchmark *name*, new benchmark groups (e.g. ``kernels/*``) are gated
automatically once both sides record them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Gated metric key -> display unit (mean_ns is the one required
#: per-record key; p99_ns and peak_rss_bytes are optional, see
#: load_records).
METRICS = {
    "mean_ns": "ns",
    "p99_ns": "ns",
    "peak_rss_bytes": "bytes",
}

#: Optional per-record keys carried into the parsed records (the first
#: two for the archived artifact only; the gated optional metrics are
#: the ones also listed in METRICS).
OPTIONAL_KEYS = ("p50_ns", "p95_ns", "p99_ns", "peak_rss_bytes")


def load_records(path: str) -> Dict[str, Dict[str, float]]:
    """Parses a JSON-lines bench file into ``{benchmark: {metric: value}}``.

    ``mean_ns`` is required per record; the latency percentiles
    (``p50_ns``/``p95_ns``/``p99_ns``) and ``peak_rss_bytes`` are kept
    when present and parseable (pre-percentile baselines simply lack
    them, which skips those comparisons). ``{"metadata": ...}`` lines
    are environment stamps, not benchmarks — skipped here without a
    warning (``load_metadata`` reads them). Unparsable lines are skipped
    with a warning on stderr — a truncated record must not turn the gate
    into a hard failure. Duplicate names keep the last occurrence.
    """
    records: Dict[str, Dict[str, float]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if isinstance(record, dict) and "metadata" in record:
                    continue
                name = record["benchmark"]
                metrics = {"mean_ns": float(record["mean_ns"])}
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                print(
                    f"warning: {path}:{lineno}: skipping malformed record ({exc})",
                    file=sys.stderr,
                )
                continue
            for key in OPTIONAL_KEYS:
                value = record.get(key)
                if value is None:
                    continue
                try:
                    metrics[key] = float(value)
                except (TypeError, ValueError):
                    print(
                        f"warning: {path}:{lineno}: ignoring bad {key}",
                        file=sys.stderr,
                    )
            records[str(name)] = metrics
    return records


def load_metadata(path: str) -> Dict[str, object]:
    """Merges a file's ``{"metadata": {...}}`` lines into one dict.

    Later lines win on key collision (each bench binary stamps the same
    environment, so collisions carry identical values in practice).
    Returns an empty dict for a missing file or one with no metadata
    lines — pre-metadata baselines are still comparable. Malformed lines
    are ignored without a warning: ``load_records`` already owns
    diagnostics for the lines that matter to the gate.
    """
    merged: Dict[str, object] = {}
    if not os.path.exists(path):
        return merged
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            metadata = record.get("metadata")
            if isinstance(metadata, dict):
                merged.update(metadata)
    return merged


def _report_metadata(
    baseline_meta: Dict[str, object], current_meta: Dict[str, object]
) -> List[str]:
    """Informational metadata lines, flagging baseline/current drift."""
    lines: List[str] = []
    for key in sorted(set(baseline_meta) | set(current_meta)):
        base = baseline_meta.get(key)
        cur = current_meta.get(key)
        if base == cur:
            lines.append(f"  [env     ] {key}: {cur}")
        else:
            lines.append(
                f"  [env CHANGED] {key}: {base} -> {cur} "
                f"(interpret regressions below with this in mind)"
            )
    return lines


def _compare_metric(
    name: str,
    metric: str,
    base: Optional[float],
    cur: Optional[float],
    threshold: float,
) -> Tuple[Optional[str], bool]:
    """One benchmark × metric comparison: ``(report_line, regressed)``."""
    if base is None or cur is None:
        # Metric absent on either side: skipped, never a failure
        # (missing mean_ns was already warned about by load_records).
        return None, False
    unit = METRICS[metric]
    ratio = (cur - base) / base if base > 0 else 0.0
    tag = "ok      "
    regressed = False
    if ratio > threshold:
        tag = "REGRESSED"
        regressed = True
    elif ratio < -threshold:
        tag = "improved"
    line = f"  [{tag}] {name} [{metric}]: {base:.1f} -> {cur:.1f} {unit} ({ratio:+.1%})"
    return line, regressed


def compare(
    baseline: Dict[str, Dict[str, float]],
    current: Dict[str, Dict[str, float]],
    threshold: float,
) -> Tuple[List[str], List[str]]:
    """Joins the two runs on benchmark name, per metric.

    Returns ``(report_lines, regressions)`` where ``regressions`` lists
    ``benchmark [metric]`` entries whose value regressed more than
    ``threshold`` (fractional, e.g. 0.25 for +25%). A metric absent on
    either side is skipped for that benchmark.
    """
    report: List[str] = []
    regressions: List[str] = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            report.append(
                f"  [gone    ] {name}: baseline {baseline[name]['mean_ns']:.1f} ns"
            )
            continue
        if name not in baseline:
            report.append(f"  [new     ] {name}: {current[name]['mean_ns']:.1f} ns")
            continue
        for metric in METRICS:
            line, regressed = _compare_metric(
                name,
                metric,
                baseline[name].get(metric),
                current[name].get(metric),
                threshold,
            )
            if line is not None:
                report.append(line)
            if regressed:
                regressions.append(f"{name} [{metric}]")
    return report, regressions


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="previous BENCH_fleet.json (may be absent)")
    parser.add_argument("current", help="this run's BENCH_fleet.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional regression (mean_ns or peak_rss_bytes) that fails "
        "the gate (default 0.25)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.current):
        print(f"error: current bench results missing: {args.current}", file=sys.stderr)
        return 2
    current = load_records(args.current)
    if not current:
        print(f"error: current bench results empty: {args.current}", file=sys.stderr)
        return 2

    if not os.path.exists(args.baseline):
        print(
            f"warning: no baseline at {args.baseline}; skipping regression gate "
            f"(first run, or artifact download failed)"
        )
        return 0
    baseline = load_records(args.baseline)
    if not baseline:
        print(f"warning: baseline {args.baseline} is empty; skipping regression gate")
        return 0

    report, regressions = compare(baseline, current, args.threshold)
    print(f"bench comparison (threshold +{args.threshold:.0%}):")
    for line in _report_metadata(
        load_metadata(args.baseline), load_metadata(args.current)
    ):
        print(line)
    for line in report:
        print(line)
    added = sorted(set(current) - set(baseline))
    if added:
        # A benchmark (or a whole new group, e.g. fleet_equilibrium/*)
        # with no baseline entry cannot be gated yet: warn so the gap is
        # visible in the log, and let the artifact upload seed the
        # baseline for the next run.
        print(
            f"warning: {len(added)} benchmark(s) have no baseline entry and "
            f"were not gated (new group's first run?): {', '.join(added)}"
        )
    if regressions:
        print(
            f"FAIL: {len(regressions)} benchmark metric(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print("OK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

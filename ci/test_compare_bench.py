#!/usr/bin/env python3
"""Unit tests for the bench-regression gate (``ci/compare_bench.py``).

Run with ``python3 ci/test_compare_bench.py`` (CI does, before the gate
itself), so the gate's failure semantics — including the synthetic >25%
regression in both ``mean_ns`` and ``peak_rss_bytes`` — are themselves
verified on every run.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from compare_bench import compare, load_metadata, load_records, main  # noqa: E402


def write_jsonl(path, records):
    """``records`` entries are ``(name, mean_ns)``, ``(name, mean_ns,
    rss)``, or ``(name, mean_ns, rss, p99_ns)`` (rss may be ``None``)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            payload = {"benchmark": record[0], "mean_ns": record[1]}
            if len(record) > 2 and record[2] is not None:
                payload["peak_rss_bytes"] = record[2]
            if len(record) > 3:
                payload["p99_ns"] = record[3]
            handle.write(json.dumps(payload) + "\n")


def ns(value):
    return {"mean_ns": value}


def ns_rss(mean, rss):
    return {"mean_ns": mean, "peak_rss_bytes": rss}


def ns_p99(mean, p99):
    return {"mean_ns": mean, "p99_ns": p99}


class CompareTests(unittest.TestCase):
    def test_within_threshold_passes(self):
        baseline = {"a": ns(100.0), "b": ns(200.0)}
        current = {"a": ns(120.0), "b": ns(190.0)}  # +20%, -5%
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])

    def test_synthetic_regression_beyond_threshold_fails(self):
        baseline = {"fleet_pipeline/10000": ns(1000.0)}
        current = {"fleet_pipeline/10000": ns(1251.0)}  # +25.1%
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, ["fleet_pipeline/10000 [mean_ns]"])

    def test_exactly_at_threshold_passes(self):
        baseline = {"a": ns(100.0)}
        current = {"a": ns(125.0)}  # exactly +25%
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])

    def test_new_and_gone_benchmarks_never_fail(self):
        baseline = {"old": ns(10.0)}
        current = {"new": ns(99999.0)}
        report, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])
        self.assertTrue(any("gone" in line for line in report))
        self.assertTrue(any("new" in line for line in report))

    def test_improvements_are_labelled_not_failed(self):
        baseline = {"a": ns(1000.0)}
        current = {"a": ns(100.0)}
        report, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])
        self.assertTrue(any("improved" in line for line in report))

    def test_peak_rss_regression_beyond_threshold_fails(self):
        baseline = {"fleet_scale/pipeline/50000": ns_rss(1000.0, 100_000_000)}
        current = {"fleet_scale/pipeline/50000": ns_rss(1000.0, 130_000_000)}  # +30%
        report, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, ["fleet_scale/pipeline/50000 [peak_rss_bytes]"])
        self.assertTrue(any("peak_rss_bytes" in line for line in report))

    def test_peak_rss_within_threshold_passes(self):
        baseline = {"a": ns_rss(1000.0, 100_000_000)}
        current = {"a": ns_rss(1100.0, 110_000_000)}  # +10% both
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])

    def test_both_metrics_can_regress_at_once(self):
        baseline = {"a": ns_rss(100.0, 100.0)}
        current = {"a": ns_rss(200.0, 200.0)}
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, ["a [mean_ns]", "a [peak_rss_bytes]"])

    def test_p99_regression_beyond_threshold_fails(self):
        # Mean flat, tail blown: exactly the regression a per-slot
        # streaming engine can hide from a mean-only gate.
        baseline = {"fleet_stream/slot/1000000": ns_p99(1000.0, 1200.0)}
        current = {"fleet_stream/slot/1000000": ns_p99(1010.0, 1600.0)}  # +33% p99
        report, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, ["fleet_stream/slot/1000000 [p99_ns]"])
        self.assertTrue(any("p99_ns" in line for line in report))

    def test_p99_within_threshold_passes(self):
        baseline = {"a": ns_p99(1000.0, 1200.0)}
        current = {"a": ns_p99(1100.0, 1400.0)}  # +16.7% p99
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])

    def test_all_three_metrics_can_regress_at_once(self):
        baseline = {"a": {"mean_ns": 100.0, "p99_ns": 100.0, "peak_rss_bytes": 100.0}}
        current = {"a": {"mean_ns": 200.0, "p99_ns": 200.0, "peak_rss_bytes": 200.0}}
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(
            regressions, ["a [mean_ns]", "a [p99_ns]", "a [peak_rss_bytes]"]
        )

    def test_missing_p99_on_either_side_skips_the_p99_gate(self):
        # Pre-percentile baselines only carry mean_ns: the new field
        # must not fail the first gated run after the shim upgrade.
        baseline = {"a": ns(100.0)}
        current = {"a": ns_p99(100.0, 10**12)}
        report, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])
        self.assertFalse(any("p99_ns" in line for line in report))
        _, regressions = compare(current, baseline, 0.25)
        self.assertEqual(regressions, [])

    def test_kernels_group_is_gated_like_any_other_benchmark(self):
        # The microbenchmark group joins the baseline by name alone:
        # no allowlist to update when a group is added, and a >25%
        # kernel regression fails the gate exactly like a pipeline one.
        baseline = {
            "kernels/gather_add_dense/1000000": ns_p99(1000.0, 1100.0),
            "kernels/argmax/1000000": ns(500.0),
        }
        current = {
            "kernels/gather_add_dense/1000000": ns_p99(1400.0, 1100.0),  # +40%
            "kernels/argmax/1000000": ns(510.0),
        }
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, ["kernels/gather_add_dense/1000000 [mean_ns]"])

    def test_a_whole_group_absent_from_the_baseline_never_fails(self):
        # First run after a new bench group lands (e.g. the ISSUE 9
        # fleet_equilibrium/* benches): every entry of the group is
        # missing from the baseline. The join must report each one as
        # [new] informationally and gate only the shared benchmarks.
        baseline = {"fleet_chaff/pipeline/1000": ns(1000.0)}
        current = {
            "fleet_chaff/pipeline/1000": ns(1010.0),
            "fleet_equilibrium/adapt_step/10000": ns(99999.0),
            "fleet_equilibrium/epoch/500": ns(99999.0),
        }
        report, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])
        new_lines = [line for line in report if "new" in line]
        self.assertEqual(len(new_lines), 2)
        self.assertTrue(any("fleet_equilibrium/adapt_step" in l for l in new_lines))

    def test_missing_rss_on_either_side_skips_the_rss_gate(self):
        # Baseline predates RSS recording (or non-Linux shim): only
        # mean_ns is compared, a huge RSS value cannot fail the gate.
        baseline = {"a": ns(100.0)}
        current = {"a": ns_rss(100.0, 10**12)}
        report, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])
        self.assertFalse(any("peak_rss_bytes" in line for line in report))
        # ... and the other way around.
        _, regressions = compare(current, baseline, 0.25)
        self.assertEqual(regressions, [])


class LoadTests(unittest.TestCase):
    def test_duplicates_keep_the_last_record(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            write_jsonl(path, [("a", 1.0), ("a", 2.0)])
            self.assertEqual(load_records(path), {"a": ns(2.0)})

    def test_rss_field_round_trips(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            write_jsonl(path, [("a", 1.0, 2048)])
            self.assertEqual(load_records(path), {"a": ns_rss(1.0, 2048.0)})

    def test_malformed_lines_are_skipped(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"benchmark": "good", "mean_ns": 5.0}\n')
                handle.write("not json at all\n")
                handle.write('{"benchmark": "no_mean"}\n')
                handle.write('{"benchmark": "bad_mean", "mean_ns": "x"}\n')
                handle.write('{"benchmark": "bad_rss", "mean_ns": 6.0, "peak_rss_bytes": "x"}\n')
            self.assertEqual(
                load_records(path), {"good": ns(5.0), "bad_rss": ns(6.0)}
            )

    def test_metadata_lines_are_skipped_without_a_warning(self):
        # Environment stamps interleave with benchmark records in the
        # same JSON-lines file; load_records must pass over them
        # silently (no "malformed record" noise on every CI run).
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"metadata": {"worker_pool_threads": 8}}\n')
                handle.write('{"benchmark": "a", "mean_ns": 5.0}\n')
                handle.write('{"metadata": {"lane_width": 8}}\n')
            import contextlib
            import io

            stderr = io.StringIO()
            with contextlib.redirect_stderr(stderr):
                records = load_records(path)
            self.assertEqual(records, {"a": ns(5.0)})
            self.assertEqual(stderr.getvalue(), "")

    def test_load_metadata_merges_all_metadata_lines(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"metadata": {"worker_pool_threads": 8}}\n')
                handle.write('{"benchmark": "a", "mean_ns": 5.0}\n')
                handle.write('{"metadata": {"lane_width": 8}}\n')
                handle.write("not json\n")
            self.assertEqual(
                load_metadata(path),
                {"worker_pool_threads": 8, "lane_width": 8},
            )

    def test_load_metadata_tolerates_missing_file_and_no_stamps(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.assertEqual(load_metadata(os.path.join(tmp, "nope.json")), {})
            path = os.path.join(tmp, "bench.json")
            write_jsonl(path, [("a", 1.0)])
            self.assertEqual(load_metadata(path), {})


class MainExitCodeTests(unittest.TestCase):
    def test_missing_baseline_warns_only(self):
        with tempfile.TemporaryDirectory() as tmp:
            current = os.path.join(tmp, "current.json")
            write_jsonl(current, [("a", 1.0)])
            missing = os.path.join(tmp, "nope.json")
            self.assertEqual(main([missing, current]), 0)

    def test_empty_baseline_warns_only(self):
        with tempfile.TemporaryDirectory() as tmp:
            current = os.path.join(tmp, "current.json")
            baseline = os.path.join(tmp, "baseline.json")
            write_jsonl(current, [("a", 1.0)])
            open(baseline, "w").close()
            self.assertEqual(main([baseline, current]), 0)

    def test_missing_current_is_a_hard_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            write_jsonl(baseline, [("a", 1.0)])
            self.assertEqual(main([baseline, os.path.join(tmp, "nope.json")]), 2)

    def test_regression_exits_nonzero(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            write_jsonl(baseline, [("a", 100.0), ("b", 50.0)])
            write_jsonl(current, [("a", 200.0), ("b", 50.0)])
            self.assertEqual(main([baseline, current]), 1)

    def test_rss_regression_exits_nonzero(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            write_jsonl(baseline, [("a", 100.0, 1000)])
            write_jsonl(current, [("a", 100.0, 1500)])
            self.assertEqual(main([baseline, current]), 1)

    def test_clean_run_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            write_jsonl(baseline, [("a", 100.0, 1000)])
            write_jsonl(current, [("a", 101.0, 1010)])
            self.assertEqual(main([baseline, current]), 0)

    def test_baseline_absent_group_warns_but_exits_zero(self):
        # Exit-code-level pin of the group-absent case: a current file
        # carrying a brand-new group next to one stable shared bench
        # must pass the gate and name the ungated benchmarks in a
        # warning on stdout.
        import contextlib
        import io

        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            write_jsonl(baseline, [("fleet_chaff/pipeline/1000", 100.0)])
            write_jsonl(
                current,
                [
                    ("fleet_chaff/pipeline/1000", 101.0),
                    ("fleet_equilibrium/adapt_step/10000", 99999.0),
                    ("fleet_equilibrium/epoch/500", 99999.0),
                ],
            )
            stdout = io.StringIO()
            with contextlib.redirect_stdout(stdout):
                self.assertEqual(main([baseline, current]), 0)
            out = stdout.getvalue()
            self.assertIn("no baseline entry", out)
            self.assertIn("fleet_equilibrium/adapt_step/10000", out)
            self.assertIn("fleet_equilibrium/epoch/500", out)

    def test_no_warning_when_every_benchmark_has_a_baseline(self):
        import contextlib
        import io

        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            write_jsonl(baseline, [("a", 100.0)])
            write_jsonl(current, [("a", 101.0)])
            stdout = io.StringIO()
            with contextlib.redirect_stdout(stdout):
                self.assertEqual(main([baseline, current]), 0)
            self.assertNotIn("no baseline entry", stdout.getvalue())

    def test_custom_threshold_is_respected(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            write_jsonl(baseline, [("a", 100.0)])
            write_jsonl(current, [("a", 140.0)])
            self.assertEqual(main([baseline, current, "--threshold", "0.5"]), 0)
            self.assertEqual(main([baseline, current, "--threshold", "0.25"]), 1)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Unit tests for the bench-regression gate (``ci/compare_bench.py``).

Run with ``python3 ci/test_compare_bench.py`` (CI does, before the gate
itself), so the gate's failure semantics — including the synthetic >25%
regression — are themselves verified on every run.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from compare_bench import compare, load_records, main  # noqa: E402


def write_jsonl(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for name, mean_ns in records:
            handle.write(json.dumps({"benchmark": name, "mean_ns": mean_ns}) + "\n")


class CompareTests(unittest.TestCase):
    def test_within_threshold_passes(self):
        baseline = {"a": 100.0, "b": 200.0}
        current = {"a": 120.0, "b": 190.0}  # +20%, -5%
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])

    def test_synthetic_regression_beyond_threshold_fails(self):
        baseline = {"fleet_pipeline/10000": 1000.0}
        current = {"fleet_pipeline/10000": 1251.0}  # +25.1%
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, ["fleet_pipeline/10000"])

    def test_exactly_at_threshold_passes(self):
        baseline = {"a": 100.0}
        current = {"a": 125.0}  # exactly +25%
        _, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])

    def test_new_and_gone_benchmarks_never_fail(self):
        baseline = {"old": 10.0}
        current = {"new": 99999.0}
        report, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])
        self.assertTrue(any("gone" in line for line in report))
        self.assertTrue(any("new" in line for line in report))

    def test_improvements_are_labelled_not_failed(self):
        baseline = {"a": 1000.0}
        current = {"a": 100.0}
        report, regressions = compare(baseline, current, 0.25)
        self.assertEqual(regressions, [])
        self.assertTrue(any("improved" in line for line in report))


class LoadTests(unittest.TestCase):
    def test_duplicates_keep_the_last_record(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            write_jsonl(path, [("a", 1.0), ("a", 2.0)])
            self.assertEqual(load_records(path), {"a": 2.0})

    def test_malformed_lines_are_skipped(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"benchmark": "good", "mean_ns": 5.0}\n')
                handle.write("not json at all\n")
                handle.write('{"benchmark": "no_mean"}\n')
                handle.write('{"benchmark": "bad_mean", "mean_ns": "x"}\n')
            self.assertEqual(load_records(path), {"good": 5.0})


class MainExitCodeTests(unittest.TestCase):
    def test_missing_baseline_warns_only(self):
        with tempfile.TemporaryDirectory() as tmp:
            current = os.path.join(tmp, "current.json")
            write_jsonl(current, [("a", 1.0)])
            missing = os.path.join(tmp, "nope.json")
            self.assertEqual(main([missing, current]), 0)

    def test_empty_baseline_warns_only(self):
        with tempfile.TemporaryDirectory() as tmp:
            current = os.path.join(tmp, "current.json")
            baseline = os.path.join(tmp, "baseline.json")
            write_jsonl(current, [("a", 1.0)])
            open(baseline, "w").close()
            self.assertEqual(main([baseline, current]), 0)

    def test_missing_current_is_a_hard_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            write_jsonl(baseline, [("a", 1.0)])
            self.assertEqual(main([baseline, os.path.join(tmp, "nope.json")]), 2)

    def test_regression_exits_nonzero(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            write_jsonl(baseline, [("a", 100.0), ("b", 50.0)])
            write_jsonl(current, [("a", 200.0), ("b", 50.0)])
            self.assertEqual(main([baseline, current]), 1)

    def test_clean_run_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            write_jsonl(baseline, [("a", 100.0)])
            write_jsonl(current, [("a", 101.0)])
            self.assertEqual(main([baseline, current]), 0)

    def test_custom_threshold_is_respected(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            write_jsonl(baseline, [("a", 100.0)])
            write_jsonl(current, [("a", 140.0)])
            self.assertEqual(main([baseline, current, "--threshold", "0.5"]), 0)
            self.assertEqual(main([baseline, current, "--threshold", "0.25"]), 1)


if __name__ == "__main__":
    unittest.main()
